/// The FPGA-simulated kernel plugged into the CG solver: the paper's
/// deployment scenario (accelerator inside Nekbone's iterative loop).
/// Results must match the CPU solve exactly and report meaningful
/// accelerator statistics.

#include <cmath>

#include <gtest/gtest.h>

#include "fpga/accelerator.hpp"
#include "solver/cg.hpp"

namespace semfpga {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(FpgaInSolver, SimulatedKernelReproducesCpuSolveExactly) {
  sem::BoxMeshSpec spec;
  spec.degree = 5;
  spec.nelx = spec.nely = spec.nelz = 2;
  spec.deformation = sem::Deformation::kSine;
  spec.deformation_amplitude = 0.03;
  const sem::Mesh mesh = sem::box_mesh(spec);

  auto make_rhs = [&](solver::PoissonSystem& system, aligned_vector<double>& b) {
    const std::size_t n = system.n_local();
    aligned_vector<double> f(n);
    system.sample(
        [](double x, double y, double z) {
          return 3.0 * kPi * kPi * std::sin(kPi * x) * std::sin(kPi * y) *
                 std::sin(kPi * z);
        },
        std::span<double>(f.data(), n));
    b.resize(n);
    system.assemble_rhs(std::span<const double>(f.data(), n),
                        std::span<double>(b.data(), n));
  };

  solver::CgOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 400;

  // CPU solve.  The simulated accelerator evaluates the operator in
  // Listing-1 (reference) order, so pin the CPU system to the same body;
  // the default fixed/parallel operator is only equal to ~1e-15 relative.
  solver::PoissonSystem cpu_system(mesh);
  cpu_system.set_local_operator(
      [&](std::span<const double> u, std::span<double> w) {
        kernels::AxArgs args;
        args.u = u;
        args.w = w;
        args.g = std::span<const double>(cpu_system.geom().g.data(),
                                         cpu_system.geom().g.size());
        args.dx = std::span<const double>(cpu_system.ref().deriv().d.data(),
                                          cpu_system.ref().deriv().d.size());
        args.dxt = std::span<const double>(cpu_system.ref().deriv().dt.data(),
                                           cpu_system.ref().deriv().dt.size());
        args.n1d = cpu_system.ref().n1d();
        args.n_elements = cpu_system.geom().n_elements;
        kernels::ax_reference(args);
      });
  aligned_vector<double> b;
  make_rhs(cpu_system, b);
  aligned_vector<double> x_cpu(cpu_system.n_local(), 0.0);
  const solver::CgResult r_cpu =
      solver::solve_cg(cpu_system, std::span<const double>(b.data(), b.size()),
                       std::span<double>(x_cpu.data(), x_cpu.size()), options);

  // FPGA-simulated solve: the accelerator becomes the local operator.
  solver::PoissonSystem fpga_system(mesh);
  const fpga::SemAccelerator acc(fpga::stratix10_gx2800(),
                                 fpga::KernelConfig::banked(5));
  int invocations = 0;
  fpga_system.set_local_operator(
      [&](std::span<const double> u, std::span<double> w) {
        kernels::AxArgs args;
        args.u = u;
        args.w = w;
        args.g = std::span<const double>(fpga_system.geom().g.data(),
                                         fpga_system.geom().g.size());
        args.dx = std::span<const double>(fpga_system.ref().deriv().d.data(),
                                          fpga_system.ref().deriv().d.size());
        args.dxt = std::span<const double>(fpga_system.ref().deriv().dt.data(),
                                           fpga_system.ref().deriv().dt.size());
        args.n1d = fpga_system.ref().n1d();
        args.n_elements = fpga_system.geom().n_elements;
        acc.run(args);
        ++invocations;
      });
  aligned_vector<double> x_fpga(fpga_system.n_local(), 0.0);
  const solver::CgResult r_fpga =
      solver::solve_cg(fpga_system, std::span<const double>(b.data(), b.size()),
                       std::span<double>(x_fpga.data(), x_fpga.size()), options);

  EXPECT_TRUE(r_cpu.converged);
  EXPECT_TRUE(r_fpga.converged);
  EXPECT_EQ(r_cpu.iterations, r_fpga.iterations);
  EXPECT_GT(invocations, r_fpga.iterations);  // initial residual + per-iter
  for (std::size_t p = 0; p < x_cpu.size(); ++p) {
    ASSERT_DOUBLE_EQ(x_cpu[p], x_fpga[p]) << "dof " << p;
  }
}

TEST(FpgaInSolver, PaddedAcceleratorAlsoReproducesTheSolve) {
  sem::BoxMeshSpec spec;
  spec.degree = 5;  // n1d = 6, padded to 8
  spec.nelx = spec.nely = spec.nelz = 2;
  const sem::Mesh mesh = sem::box_mesh(spec);

  solver::PoissonSystem system(mesh);
  fpga::KernelConfig cfg = fpga::KernelConfig::banked(5);
  cfg.pad = 2;
  const fpga::SemAccelerator acc(fpga::stratix10_gx2800(), cfg);

  const std::size_t n = system.n_local();
  aligned_vector<double> u(n, 0.0), w_cpu(n, 0.0), w_fpga(n, 0.0);
  system.sample([](double x, double y, double z) { return x * y + z * z; },
                std::span<double>(u.data(), n));

  kernels::AxArgs args;
  args.u = u;
  args.g = std::span<const double>(system.geom().g.data(), system.geom().g.size());
  args.dx = std::span<const double>(system.ref().deriv().d.data(),
                                    system.ref().deriv().d.size());
  args.dxt = std::span<const double>(system.ref().deriv().dt.data(),
                                     system.ref().deriv().dt.size());
  args.n1d = system.ref().n1d();
  args.n_elements = system.geom().n_elements;

  args.w = w_cpu;
  kernels::ax_reference(args);
  args.w = w_fpga;
  acc.run(args);
  for (std::size_t p = 0; p < n; ++p) {
    ASSERT_DOUBLE_EQ(w_cpu[p], w_fpga[p]);
  }
}

}  // namespace
}  // namespace semfpga
