/// End-to-end PDE verification: the full stack (mesh -> geometric factors
/// -> kernels -> gather-scatter -> CG) solves the Poisson equation with
/// spectral accuracy, on straight and deformed meshes.

#include <cmath>

#include <gtest/gtest.h>

#include "solver/cg.hpp"

namespace semfpga {
namespace {

constexpr double kPi = 3.14159265358979323846;

struct Convergence {
  double error;
  int iterations;
};

Convergence solve(int degree, int nel, sem::Deformation def) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = nel;
  spec.deformation = def;
  spec.deformation_amplitude = 0.03;
  const sem::Mesh mesh = sem::box_mesh(spec);
  solver::PoissonSystem system(mesh);

  const std::size_t n = system.n_local();
  aligned_vector<double> f(n), b(n), x(n, 0.0);
  system.sample(
      [](double px, double py, double pz) {
        return 3.0 * kPi * kPi * std::sin(kPi * px) * std::sin(kPi * py) *
               std::sin(kPi * pz);
      },
      std::span<double>(f.data(), n));
  system.assemble_rhs(std::span<const double>(f.data(), n), std::span<double>(b.data(), n));

  solver::CgOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 800;
  const solver::CgResult r = solver::solve_cg(
      system, std::span<const double>(b.data(), n), std::span<double>(x.data(), n),
      options);

  aligned_vector<double> exact(n);
  system.sample(
      [](double px, double py, double pz) {
        return std::sin(kPi * px) * std::sin(kPi * py) * std::sin(kPi * pz);
      },
      std::span<double>(exact.data(), n));
  double err = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    err = std::max(err, std::abs(x[p] - exact[p]));
  }
  return {err, r.iterations};
}

TEST(PoissonConvergence, PConvergenceOnUniformMesh) {
  const double e3 = solve(3, 2, sem::Deformation::kNone).error;
  const double e5 = solve(5, 2, sem::Deformation::kNone).error;
  const double e7 = solve(7, 2, sem::Deformation::kNone).error;
  // Spectral: each +2 in degree buys >= 20x accuracy here.
  EXPECT_LT(e5, e3 / 20.0);
  EXPECT_LT(e7, e5 / 20.0);
  // e7 sits at the CG tolerance floor rather than the discretisation error.
  EXPECT_LT(e7, 5e-9);
}

TEST(PoissonConvergence, HConvergenceAtFixedDegree) {
  const double e1 = solve(2, 1, sem::Deformation::kNone).error;
  const double e2 = solve(2, 2, sem::Deformation::kNone).error;
  const double e3 = solve(2, 4, sem::Deformation::kNone).error;
  EXPECT_LT(e2, e1);
  EXPECT_LT(e3, e2);
  // Order-(N+1) convergence in h: halving h should buy ~2^3.
  EXPECT_LT(e3, e2 / 4.0);
}

TEST(PoissonConvergence, DeformedMeshesStaySpectral) {
  const double sine = solve(6, 2, sem::Deformation::kSine).error;
  const double twist = solve(6, 2, sem::Deformation::kTwist).error;
  EXPECT_LT(sine, 1e-5);
  EXPECT_LT(twist, 1e-5);
}

TEST(PoissonConvergence, IterationCountGrowsWithResolution) {
  // Without a strong preconditioner, CG iterations grow with the condition
  // number — sanity that we are genuinely solving a harder system.  The
  // manufactured sine forcing is nearly a single eigenmode (CG converges in
  // a handful of steps at any size), so use a rough, spectrum-rich forcing.
  auto iterations = [](int nel) {
    sem::BoxMeshSpec spec;
    spec.degree = 2;
    spec.nelx = spec.nely = spec.nelz = nel;
    const sem::Mesh mesh = sem::box_mesh(spec);
    solver::PoissonSystem system(mesh);
    const std::size_t n = system.n_local();
    aligned_vector<double> f(n), b(n), x(n, 0.0);
    system.sample(
        [](double px, double py, double pz) {
          // High-frequency content at every resolvable scale.
          return std::sin(29.0 * px) * std::cos(23.0 * py) +
                 std::sin(17.0 * pz * px) + 0.3 * std::cos(41.0 * py * pz);
        },
        std::span<double>(f.data(), n));
    system.assemble_rhs(std::span<const double>(f.data(), n),
                        std::span<double>(b.data(), n));
    solver::CgOptions options;
    options.tolerance = 1e-10;
    options.max_iterations = 500;
    options.use_jacobi = false;
    const solver::CgResult r = solver::solve_cg(
        system, std::span<const double>(b.data(), n), std::span<double>(x.data(), n),
        options);
    return r.iterations;
  };
  const int i1 = iterations(2);
  const int i2 = iterations(4);
  EXPECT_GT(i2, i1);
}

}  // namespace
}  // namespace semfpga
