#include "kernels/ax.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sem/dense.hpp"

namespace semfpga::kernels {
namespace {

/// Shared workload: a small deformed mesh plus random input fields.
struct Workload {
  explicit Workload(int degree, sem::Deformation def = sem::Deformation::kSine,
                    int nel = 2, std::uint64_t seed = 77)
      : ref(degree) {
    sem::BoxMeshSpec spec;
    spec.degree = degree;
    spec.nelx = spec.nely = spec.nelz = nel;
    spec.deformation = def;
    spec.deformation_amplitude = 0.04;
    mesh = std::make_unique<sem::Mesh>(spec, ref);
    gf = sem::geometric_factors(*mesh, ref);
    const std::size_t n = mesh->n_local();
    u.resize(n);
    w.assign(n, 0.0);
    SplitMix64 rng(seed);
    for (double& v : u) {
      v = rng.uniform(-1.0, 1.0);
    }
  }

  [[nodiscard]] AxArgs args() {
    AxArgs a;
    a.u = u;
    a.w = w;
    a.g = std::span<const double>(gf.g.data(), gf.g.size());
    a.dx = std::span<const double>(ref.deriv().d.data(), ref.deriv().d.size());
    a.dxt = std::span<const double>(ref.deriv().dt.data(), ref.deriv().dt.size());
    a.n1d = ref.n1d();
    a.n_elements = gf.n_elements;
    return a;
  }

  sem::ReferenceElement ref;
  std::unique_ptr<sem::Mesh> mesh;
  sem::GeomFactors gf;
  std::vector<double> u;
  std::vector<double> w;
};

class AxVsDense : public ::testing::TestWithParam<int> {};

TEST_P(AxVsDense, MatchesDenseAssembly) {
  // The matrix-free kernel must agree with the independently assembled
  // dense local operator on every element of a deformed mesh.
  Workload wl(GetParam());
  ax_reference(wl.args());
  const std::size_t ppe = wl.ref.points_per_element();
  for (std::size_t e = 0; e < wl.gf.n_elements; ++e) {
    const auto a = sem::assemble_local_matrix(wl.ref, wl.gf, e);
    const std::vector<double> ue(wl.u.begin() + static_cast<long>(e * ppe),
                                 wl.u.begin() + static_cast<long>((e + 1) * ppe));
    const auto expected = sem::dense_apply(a, ue);
    for (std::size_t p = 0; p < ppe; ++p) {
      ASSERT_NEAR(wl.w[e * ppe + p], expected[p],
                  1e-10 * std::max(1.0, std::abs(expected[p])))
          << "element " << e << " dof " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, AxVsDense, ::testing::Values(1, 2, 3, 4));

class AxVariants : public ::testing::TestWithParam<int> {};

TEST_P(AxVariants, SoaMatchesReference) {
  Workload a(GetParam());
  Workload b(GetParam());
  ax_reference(a.args());

  const auto split = sem::split_geom(b.gf);
  AxSoaArgs soa;
  soa.u = b.u;
  soa.w = b.w;
  for (int c = 0; c < sem::kGeomComponents; ++c) {
    soa.g[static_cast<std::size_t>(c)] = split[static_cast<std::size_t>(c)];
  }
  soa.dx = std::span<const double>(b.ref.deriv().d.data(), b.ref.deriv().d.size());
  soa.dxt = std::span<const double>(b.ref.deriv().dt.data(), b.ref.deriv().dt.size());
  soa.n1d = b.ref.n1d();
  soa.n_elements = b.gf.n_elements;
  ax_soa(soa);

  for (std::size_t p = 0; p < a.w.size(); ++p) {
    ASSERT_DOUBLE_EQ(a.w[p], b.w[p]) << "dof " << p;
  }
}

TEST_P(AxVariants, OmpMatchesReference) {
  Workload a(GetParam());
  Workload b(GetParam());
  ax_reference(a.args());
  ax_omp(b.args());
  for (std::size_t p = 0; p < a.w.size(); ++p) {
    ASSERT_DOUBLE_EQ(a.w[p], b.w[p]);
  }
}

TEST_P(AxVariants, FixedMatchesReference) {
  Workload a(GetParam());
  Workload b(GetParam());
  ax_reference(a.args());
  ax_fixed(b.args());
  for (std::size_t p = 0; p < a.w.size(); ++p) {
    ASSERT_NEAR(a.w[p], b.w[p], 1e-13 * std::max(1.0, std::abs(a.w[p])));
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, AxVariants,
                         ::testing::Values(1, 2, 3, 5, 7, 9, 11, 15));

class AxProperties : public ::testing::TestWithParam<int> {};

TEST_P(AxProperties, ConstantsMapToZero) {
  Workload wl(GetParam());
  std::fill(wl.u.begin(), wl.u.end(), 3.7);
  ax_reference(wl.args());
  for (double v : wl.w) {
    EXPECT_NEAR(v, 0.0, 1e-9);
  }
}

TEST_P(AxProperties, OperatorIsLinear) {
  const int degree = GetParam();
  Workload wa(degree, sem::Deformation::kSine, 2, 1);
  Workload wb(degree, sem::Deformation::kSine, 2, 2);
  Workload wc(degree, sem::Deformation::kSine, 2, 3);
  const double alpha = 2.25, beta = -0.75;
  for (std::size_t p = 0; p < wc.u.size(); ++p) {
    wc.u[p] = alpha * wa.u[p] + beta * wb.u[p];
  }
  ax_reference(wa.args());
  ax_reference(wb.args());
  ax_reference(wc.args());
  for (std::size_t p = 0; p < wc.w.size(); ++p) {
    const double expected = alpha * wa.w[p] + beta * wb.w[p];
    ASSERT_NEAR(wc.w[p], expected, 1e-9 * std::max(1.0, std::abs(expected)));
  }
}

TEST_P(AxProperties, OperatorIsSymmetric) {
  // u . A v == v . A u (element-local operator is symmetric).
  const int degree = GetParam();
  Workload wu(degree, sem::Deformation::kTwist, 2, 4);
  Workload wv(degree, sem::Deformation::kTwist, 2, 5);
  ax_reference(wu.args());  // wu.w = A u
  ax_reference(wv.args());  // wv.w = A v
  double uav = 0.0, vau = 0.0;
  for (std::size_t p = 0; p < wu.u.size(); ++p) {
    uav += wu.u[p] * wv.w[p];
    vau += wv.u[p] * wu.w[p];
  }
  EXPECT_NEAR(uav, vau, 1e-8 * std::max(1.0, std::abs(uav)));
}

TEST_P(AxProperties, QuadraticFormNonNegative) {
  Workload wl(GetParam(), sem::Deformation::kSine, 2, 6);
  ax_reference(wl.args());
  double quad = 0.0;
  for (std::size_t p = 0; p < wl.u.size(); ++p) {
    quad += wl.u[p] * wl.w[p];
  }
  EXPECT_GE(quad, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Degrees, AxProperties, ::testing::Values(1, 3, 5, 7));

TEST(Ax, LaplacianOfLinearFieldVanishesInside) {
  // For u = x the continuous Laplacian is zero; the local operator applied
  // and assembled over a uniform mesh must vanish at interior DOFs.  Here
  // we check the single-element version against the dense operator instead:
  // A x-coordinate-field on an affine element gives surface terms only.
  Workload wl(4, sem::Deformation::kNone, 1);
  for (std::size_t p = 0; p < wl.u.size(); ++p) {
    wl.u[p] = wl.mesh->x()[p];
  }
  ax_reference(wl.args());
  // Interior DOFs of the element: Laplacian contribution zero.
  const int n1d = wl.ref.n1d();
  for (int k = 1; k < n1d - 1; ++k) {
    for (int j = 1; j < n1d - 1; ++j) {
      for (int i = 1; i < n1d - 1; ++i) {
        EXPECT_NEAR(wl.w[wl.ref.index(i, j, k)], 0.0, 1e-10);
      }
    }
  }
}

TEST(Ax, SingleElementHelperMatchesBatch) {
  Workload wl(3);
  ax_reference(wl.args());
  const std::size_t ppe = wl.ref.points_per_element();
  std::vector<double> we(ppe, 0.0);
  for (std::size_t e = 0; e < wl.gf.n_elements; ++e) {
    ax_single_element(wl.ref, wl.gf, e,
                      std::span<const double>(wl.u.data() + e * ppe, ppe),
                      std::span<double>(we.data(), ppe));
    for (std::size_t p = 0; p < ppe; ++p) {
      ASSERT_DOUBLE_EQ(we[p], wl.w[e * ppe + p]);
    }
  }
}

TEST(Ax, ValidatesArgumentSizes) {
  Workload wl(2);
  AxArgs bad = wl.args();
  bad.n_elements += 1;  // u/w no longer cover the claimed elements
  EXPECT_THROW(ax_reference(bad), std::invalid_argument);
  AxArgs bad2 = wl.args();
  bad2.n1d = 5;
  EXPECT_THROW(ax_reference(bad2), std::invalid_argument);
}

TEST(Ax, FlopCountingMatchesPaper) {
  // C(N) = (6(N+1)+6, 6(N+1)+9), I(N) = (12(N+1)+15)/64 (Section IV).
  EXPECT_EQ(ax_adds_per_dof(8), 54);
  EXPECT_EQ(ax_mults_per_dof(8), 57);
  EXPECT_EQ(ax_flops_per_dof(8), 111);
  EXPECT_EQ(ax_flops_per_dof(12), 159);
  EXPECT_EQ(ax_flops_per_dof(16), 207);
  EXPECT_EQ(ax_bytes_per_dof(), 64);
  EXPECT_NEAR(ax_intensity(8), 111.0 / 64.0, 1e-15);
  EXPECT_EQ(ax_flops(8, 4096), 111LL * 512 * 4096);
}

}  // namespace
}  // namespace semfpga::kernels
