/// Parity contract of the batched execution engine (kernels/ax_dispatch.hpp):
/// every variant, at every thread count, on every paper degree and deformed
/// mesh, agrees with ax_reference to 1e-12 relative error — and each
/// variant is bitwise identical to itself across thread counts.

#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/ax_dispatch.hpp"
#include "sem/geometry.hpp"

namespace semfpga::kernels {
namespace {

/// Deformed-mesh operands plus reference output for one degree.
struct Workload {
  Workload(int degree, sem::Deformation def) : ref(degree) {
    sem::BoxMeshSpec spec;
    spec.degree = degree;
    spec.nelx = spec.nely = spec.nelz = 2;
    spec.deformation = def;
    spec.deformation_amplitude = 0.04;
    mesh = std::make_unique<sem::Mesh>(spec, ref);
    gf = sem::geometric_factors(*mesh, ref);
    const std::size_t n = mesh->n_local();
    u.resize(n);
    w.assign(n, 0.0);
    w_ref.assign(n, 0.0);
    SplitMix64 rng(31 + static_cast<std::uint64_t>(degree));
    for (double& v : u) {
      v = rng.uniform(-1.0, 1.0);
    }
    AxArgs a = args();
    a.w = w_ref;
    ax_reference(a);
    scale = 0.0;
    for (const double v : w_ref) {
      scale = std::max(scale, std::abs(v));
    }
  }

  [[nodiscard]] AxArgs args() {
    AxArgs a;
    a.u = u;
    a.w = w;
    a.g = std::span<const double>(gf.g.data(), gf.g.size());
    a.dx = std::span<const double>(ref.deriv().d.data(), ref.deriv().d.size());
    a.dxt = std::span<const double>(ref.deriv().dt.data(), ref.deriv().dt.size());
    a.n1d = ref.n1d();
    a.n_elements = gf.n_elements;
    return a;
  }

  void expect_matches_reference(const char* label) const {
    for (std::size_t p = 0; p < w.size(); ++p) {
      ASSERT_NEAR(w[p], w_ref[p], 1e-12 * scale) << label << " dof " << p;
    }
  }

  sem::ReferenceElement ref;
  std::unique_ptr<sem::Mesh> mesh;
  sem::GeomFactors gf;
  std::vector<double> u, w, w_ref;
  double scale = 0.0;
};

using EngineCase = std::tuple<int, AxVariant, sem::Deformation>;

class EngineParity : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineParity, MatchesReferenceAtEveryThreadCount) {
  const auto [degree, variant, deformation] = GetParam();
  Workload wl(degree, deformation);

  for (const int threads : {1, 2, 4}) {
    std::fill(wl.w.begin(), wl.w.end(), 0.0);
    ax_run(variant, wl.args(), AxExecPolicy{threads});
    wl.expect_matches_reference(ax_variant_name(variant));
  }
}

TEST_P(EngineParity, ThreadCountDoesNotChangeBits) {
  const auto [degree, variant, deformation] = GetParam();
  Workload wl(degree, deformation);

  ax_run(variant, wl.args(), AxExecPolicy{1});
  std::vector<double> serial = wl.w;
  std::fill(wl.w.begin(), wl.w.end(), 0.0);
  ax_run(variant, wl.args(), AxExecPolicy{4});
  for (std::size_t p = 0; p < wl.w.size(); ++p) {
    ASSERT_EQ(wl.w[p], serial[p])
        << ax_variant_name(variant) << " dof " << p << ": re-threading changed bits";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Degrees3To9, EngineParity,
    ::testing::Combine(::testing::Values(3, 4, 5, 6, 7, 8, 9),
                       ::testing::ValuesIn(kAllAxVariants),
                       ::testing::Values(sem::Deformation::kSine,
                                         sem::Deformation::kTwist)),
    [](const ::testing::TestParamInfo<EngineCase>& tpi) {
      return std::string("N") + std::to_string(std::get<0>(tpi.param)) + "_" +
             ax_variant_name(std::get<1>(tpi.param)) + "_" +
             (std::get<2>(tpi.param) == sem::Deformation::kSine ? "sine" : "twist");
    });

TEST(AxFixedN1d, DirectTemplateCallMatchesReference) {
  Workload wl(5, sem::Deformation::kSine);  // degree 5 -> n1d 6
  ax_fixed_n1d<6>(wl.args(), 0, wl.gf.n_elements);
  wl.expect_matches_reference("ax_fixed_n1d<6>");
}

TEST(AxFixedN1d, PartialRangeTouchesOnlyThoseElements) {
  Workload wl(4, sem::Deformation::kTwist);
  const std::size_t ppe = wl.ref.points_per_element();
  std::fill(wl.w.begin(), wl.w.end(), -7.0);
  ax_fixed_n1d<5>(wl.args(), 1, 3);
  for (std::size_t p = 0; p < ppe; ++p) {
    EXPECT_EQ(wl.w[p], -7.0) << "element 0 was written";
  }
  for (std::size_t p = ppe; p < 3 * ppe; ++p) {
    ASSERT_NEAR(wl.w[p], wl.w_ref[p], 1e-12 * wl.scale) << "dof " << p;
  }
  for (std::size_t p = 3 * ppe; p < wl.w.size(); ++p) {
    ASSERT_EQ(wl.w[p], -7.0) << "element beyond the range was written";
  }
}

TEST(AxFixedN1d, OrdersOutsideTemplateRangeFallBackToReference) {
  // degree 17 -> n1d 18 > kAxFixedMaxN1d: the fixed dispatch must still be
  // correct (runtime-order body), and bitwise equal to the reference.
  ASSERT_GT(18, kAxFixedMaxN1d);
  Workload wl(17, sem::Deformation::kSine);
  ax_run(AxVariant::kFixed, wl.args(), AxExecPolicy{1});
  for (std::size_t p = 0; p < wl.w.size(); ++p) {
    ASSERT_EQ(wl.w[p], wl.w_ref[p]) << "dof " << p;
  }
}

TEST(AxVariantNames, RoundTrip) {
  for (const AxVariant v : kAllAxVariants) {
    EXPECT_EQ(parse_ax_variant(ax_variant_name(v)), v);
  }
  EXPECT_THROW((void)parse_ax_variant("turbo"), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::kernels
