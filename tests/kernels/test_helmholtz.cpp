#include "kernels/helmholtz.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/kernel_cost.hpp"
#include "sem/geometry.hpp"

namespace semfpga::kernels {
namespace {

struct HelmWorkload {
  explicit HelmWorkload(int degree, double lambda) : ref(degree) {
    sem::BoxMeshSpec spec;
    spec.degree = degree;
    spec.nelx = spec.nely = spec.nelz = 2;
    spec.deformation = sem::Deformation::kSine;
    spec.deformation_amplitude = 0.03;
    mesh = std::make_unique<sem::Mesh>(spec, ref);
    gf = sem::geometric_factors(*mesh, ref);
    const std::size_t n = mesh->n_local();
    u.resize(n);
    w.assign(n, 0.0);
    SplitMix64 rng(3);
    for (double& v : u) {
      v = rng.uniform(-1.0, 1.0);
    }
    args.ax.u = u;
    args.ax.w = w;
    args.ax.g = std::span<const double>(gf.g.data(), gf.g.size());
    args.ax.dx = std::span<const double>(ref.deriv().d.data(), ref.deriv().d.size());
    args.ax.dxt = std::span<const double>(ref.deriv().dt.data(), ref.deriv().dt.size());
    args.ax.n1d = ref.n1d();
    args.ax.n_elements = gf.n_elements;
    args.mass = std::span<const double>(gf.mass.data(), gf.mass.size());
    args.lambda = lambda;
  }

  sem::ReferenceElement ref;
  std::unique_ptr<sem::Mesh> mesh;
  sem::GeomFactors gf;
  std::vector<double> u, w;
  HelmholtzArgs args;
};

TEST(Helmholtz, ReducesToPoissonAtLambdaZero) {
  HelmWorkload h(3, 0.0);
  HelmWorkload p(3, 0.0);
  helmholtz_reference(h.args);
  ax_reference(p.args.ax);
  for (std::size_t i = 0; i < h.w.size(); ++i) {
    ASSERT_DOUBLE_EQ(h.w[i], p.w[i]);
  }
}

TEST(Helmholtz, MassTermIsAdditive) {
  HelmWorkload h(3, 2.5);
  HelmWorkload p(3, 0.0);
  helmholtz_reference(h.args);
  ax_reference(p.args.ax);
  for (std::size_t i = 0; i < h.w.size(); ++i) {
    const double expected = p.w[i] + 2.5 * h.gf.mass[i] * h.u[i];
    ASSERT_NEAR(h.w[i], expected, 1e-12 * std::max(1.0, std::abs(expected)));
  }
}

TEST(Helmholtz, ConstantsMapToMassTimesConstant) {
  // With u = c: the stiffness part vanishes, leaving lambda * M * c.
  HelmWorkload h(4, 1.5);
  std::fill(h.u.begin(), h.u.end(), 2.0);
  helmholtz_reference(h.args);
  for (std::size_t i = 0; i < h.w.size(); ++i) {
    ASSERT_NEAR(h.w[i], 1.5 * h.gf.mass[i] * 2.0, 1e-9);
  }
}

TEST(Helmholtz, QuadraticFormIsStrictlyPositive) {
  // lambda > 0 turns the PSD stiffness into a definite operator.
  HelmWorkload h(3, 1.0);
  helmholtz_reference(h.args);
  double quad = 0.0;
  for (std::size_t i = 0; i < h.u.size(); ++i) {
    quad += h.u[i] * h.w[i];
  }
  EXPECT_GT(quad, 0.0);
}

TEST(Helmholtz, RejectsNegativeLambda) {
  HelmWorkload h(2, 1.0);
  h.args.lambda = -1.0;
  EXPECT_THROW(helmholtz_reference(h.args), std::invalid_argument);
  EXPECT_THROW(helmholtz_run(AxVariant::kFixed, h.args), std::invalid_argument);
}

TEST(Helmholtz, RejectsWrongMassSize) {
  HelmWorkload h(2, 1.0);
  std::vector<double> short_mass(h.u.size() - 1, 1.0);
  h.args.mass = short_mass;
  EXPECT_THROW(helmholtz_reference(h.args), std::invalid_argument);
  EXPECT_THROW(helmholtz_run(AxVariant::kReference, h.args), std::invalid_argument);
}

TEST(Helmholtz, RejectsBadStiffnessOperands) {
  // validate() must also walk the embedded AxArgs: a truncated output view
  // is the classic size mismatch.
  HelmWorkload h(3, 1.0);
  h.args.ax.w = std::span<double>(h.w.data(), h.w.size() - 1);
  EXPECT_THROW(helmholtz_run(AxVariant::kFixed, h.args), std::invalid_argument);
}

TEST(Helmholtz, FlopsPerDofMatchesTheHandCount) {
  // Hand count at N1D = 2 (degree 1): the Ax kernel does 6(N+1)+6 = 18 adds
  // and 6(N+1)+9 = 21 mults per DOF; the mass tail w += lambda*mass*u adds
  // 1 add and 2 mults.  Total (18+1) + (21+2) = 42.
  EXPECT_EQ(helmholtz_flops_per_dof(2), 42);
  // Same ledger at N1D = 8 (degree 7, the paper's workhorse):
  // (6*8+6+1) + (6*8+9+2) = 55 + 59 = 114.
  EXPECT_EQ(helmholtz_flops_per_dof(8), 114);
  // And structurally: Ax plus the three mass-term FLOPs.
  EXPECT_EQ(helmholtz_flops_per_dof(8), ax_flops_per_dof(8) + 3);
}

TEST(Helmholtz, FlopsPerDofAgreesWithTheModelLedger) {
  // kernels::helmholtz_flops_per_dof(N+1) and model::helmholtz_cost(N) are
  // two bookkeepers of the same kernel; they must not drift.
  for (const int degree : {1, 3, 7, 11}) {
    EXPECT_EQ(helmholtz_flops_per_dof(degree + 1),
              model::helmholtz_cost(degree).flops_per_dof())
        << "degree " << degree;
  }
}

TEST(Helmholtz, TotalFlopsScaleWithElementsAndPoints) {
  EXPECT_EQ(helmholtz_flops(8, 16), 114LL * 512 * 16);
}

class HelmEngine : public ::testing::TestWithParam<AxVariant> {};

TEST_P(HelmEngine, ReferenceVariantIsBitwiseTheReferenceKernel) {
  const AxVariant variant = GetParam();
  HelmWorkload engine(5, 1.75);
  HelmWorkload oracle(5, 1.75);
  helmholtz_reference(oracle.args);
  helmholtz_run(variant, engine.args, AxExecPolicy{1});
  for (std::size_t p = 0; p < engine.w.size(); ++p) {
    if (variant == AxVariant::kReference) {
      ASSERT_EQ(engine.w[p], oracle.w[p]) << "dof " << p;
    } else {
      // Other variants reorder the stiffness contractions; the mass tail is
      // identical, so agreement is to rounding of the Ax part.
      ASSERT_NEAR(engine.w[p], oracle.w[p],
                  1e-12 * std::max(1.0, std::abs(oracle.w[p])))
          << "dof " << p;
    }
  }
}

TEST_P(HelmEngine, RethreadingIsBitwiseDeterministic) {
  const AxVariant variant = GetParam();
  HelmWorkload serial(4, 0.8);
  helmholtz_run(variant, serial.args, AxExecPolicy{1});
  for (const int threads : {2, 4, 0}) {
    HelmWorkload threaded(4, 0.8);
    helmholtz_run(variant, threaded.args, AxExecPolicy{threads});
    for (std::size_t p = 0; p < serial.w.size(); ++p) {
      ASSERT_EQ(threaded.w[p], serial.w[p])
          << ax_variant_name(variant) << " dof " << p << " at " << threads
          << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, HelmEngine, ::testing::ValuesIn(kAllAxVariants),
                         [](const ::testing::TestParamInfo<AxVariant>& tpi) {
                           return std::string(ax_variant_name(tpi.param));
                         });

}  // namespace
}  // namespace semfpga::kernels
