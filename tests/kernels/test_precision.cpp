/// Precision ablation (paper footnote 6): the FP32 kernel agrees with FP64
/// at single-precision accuracy on one apply, but accumulates error inside
/// an iterative solver — quantifying why the paper insists on FP64.

#include "kernels/ax_f32.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "solver/cg.hpp"

namespace semfpga::kernels {
namespace {

struct MixedWorkload {
  explicit MixedWorkload(int degree) : ref(degree) {
    sem::BoxMeshSpec spec;
    spec.degree = degree;
    spec.nelx = spec.nely = spec.nelz = 2;
    spec.deformation = sem::Deformation::kSine;
    spec.deformation_amplitude = 0.03;
    mesh = std::make_unique<sem::Mesh>(spec, ref);
    gf = sem::geometric_factors(*mesh, ref);
    const std::size_t n = mesh->n_local();
    u64.resize(n);
    w64.assign(n, 0.0);
    SplitMix64 rng(21);
    for (double& v : u64) {
      v = rng.uniform(-1.0, 1.0);
    }
  }

  [[nodiscard]] AxArgs args64() {
    AxArgs a;
    a.u = u64;
    a.w = w64;
    a.g = std::span<const double>(gf.g.data(), gf.g.size());
    a.dx = std::span<const double>(ref.deriv().d.data(), ref.deriv().d.size());
    a.dxt = std::span<const double>(ref.deriv().dt.data(), ref.deriv().dt.size());
    a.n1d = ref.n1d();
    a.n_elements = gf.n_elements;
    return a;
  }

  sem::ReferenceElement ref;
  std::unique_ptr<sem::Mesh> mesh;
  sem::GeomFactors gf;
  std::vector<double> u64, w64;
};

class PrecisionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrecisionSweep, SingleApplyAgreesAtFp32Accuracy) {
  MixedWorkload wl(GetParam());
  ax_reference(wl.args64());

  const auto uf = demote(wl.u64);
  const auto gfx = demote(std::span<const double>(wl.gf.g.data(), wl.gf.g.size()));
  const auto dxf = demote(std::span<const double>(wl.ref.deriv().d.data(),
                                                  wl.ref.deriv().d.size()));
  const auto dxtf = demote(std::span<const double>(wl.ref.deriv().dt.data(),
                                                   wl.ref.deriv().dt.size()));
  std::vector<float> wf(wl.u64.size(), 0.0f);
  AxArgsF32 a32;
  a32.u = uf;
  a32.w = wf;
  a32.g = gfx;
  a32.dx = dxf;
  a32.dxt = dxtf;
  a32.n1d = wl.ref.n1d();
  a32.n_elements = wl.gf.n_elements;
  ax_reference_f32(a32);

  // Relative error should sit near FP32 epsilon scaled by the contraction
  // length, far above FP64 noise but well below 1e-3.
  double scale = 0.0;
  for (double v : wl.w64) {
    scale = std::max(scale, std::abs(v));
  }
  double max_err = 0.0;
  for (std::size_t p = 0; p < wf.size(); ++p) {
    max_err = std::max(max_err, std::abs(wl.w64[p] - static_cast<double>(wf[p])));
  }
  EXPECT_LT(max_err / scale, 1e-3) << "N=" << GetParam();
  EXPECT_GT(max_err / scale, 1e-9) << "N=" << GetParam();  // genuinely fp32
}

INSTANTIATE_TEST_SUITE_P(Degrees, PrecisionSweep, ::testing::Values(2, 4, 7));

TEST(Precision, Fp32OperatorInCgStallsAboveFp64Floor) {
  // Run the same CG twice: once with the FP64 kernel, once with the local
  // operator evaluated in FP32 (operands demoted per apply).  CG's
  // *recursive* residual converges either way (inexact-Krylov behaviour);
  // the discriminating metric is the TRUE residual b - A x recomputed with
  // the exact FP64 operator, which stalls at FP32 accuracy.
  sem::BoxMeshSpec spec;
  spec.degree = 5;
  spec.nelx = spec.nely = spec.nelz = 2;
  const sem::Mesh mesh = sem::box_mesh(spec);

  auto run = [&mesh](bool fp32) {
    solver::PoissonSystem system(mesh);
    if (fp32) {
      system.set_local_operator([&system](std::span<const double> u,
                                          std::span<double> w) {
        const auto uf = demote(u);
        const auto gfx = demote(std::span<const double>(system.geom().g.data(),
                                                        system.geom().g.size()));
        const auto dxf = demote(std::span<const double>(
            system.ref().deriv().d.data(), system.ref().deriv().d.size()));
        const auto dxtf = demote(std::span<const double>(
            system.ref().deriv().dt.data(), system.ref().deriv().dt.size()));
        std::vector<float> wf(u.size(), 0.0f);
        AxArgsF32 a;
        a.u = uf;
        a.w = wf;
        a.g = gfx;
        a.dx = dxf;
        a.dxt = dxtf;
        a.n1d = system.ref().n1d();
        a.n_elements = system.geom().n_elements;
        ax_reference_f32(a);
        for (std::size_t p = 0; p < w.size(); ++p) {
          w[p] = static_cast<double>(wf[p]);
        }
      });
    }
    const std::size_t n = system.n_local();
    aligned_vector<double> f(n), b(n), x(n, 0.0);
    system.sample(
        [](double px, double py, double pz) {
          constexpr double kPi = 3.14159265358979323846;
          return std::sin(kPi * px) * std::sin(kPi * py) * std::sin(kPi * pz);
        },
        std::span<double>(f.data(), n));
    system.assemble_rhs(std::span<const double>(f.data(), n),
                        std::span<double>(b.data(), n));
    solver::CgOptions options;
    options.tolerance = 1e-13;
    options.max_iterations = 120;
    (void)solver::solve_cg(system, std::span<const double>(b.data(), n),
                           std::span<double>(x.data(), n), options);

    // True residual against the exact FP64 operator.
    solver::PoissonSystem exact(mesh);
    aligned_vector<double> ax(n);
    exact.apply(std::span<const double>(x.data(), n), std::span<double>(ax.data(), n));
    aligned_vector<double> r_true(n);
    for (std::size_t p = 0; p < n; ++p) {
      r_true[p] = b[p] - ax[p];
    }
    return std::sqrt(std::abs(
        exact.weighted_dot(std::span<const double>(r_true.data(), n),
                           std::span<const double>(r_true.data(), n))));
  };

  const double res64 = run(false);
  const double res32 = run(true);
  EXPECT_LT(res64, 1e-11);
  EXPECT_GT(res32, 1e-9);            // stalled at fp32 accuracy
  EXPECT_GT(res32, res64 * 1e2);     // orders of magnitude apart
}

TEST(Precision, DemotePromoteRoundTrip) {
  const std::vector<double> v = {1.0, -0.5, 3.14159265358979, 1e-30, -1e30};
  const auto f = demote(v);
  const auto back = promote(f);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i], v[i], std::abs(v[i]) * 1e-6 + 1e-37);
  }
}

TEST(Precision, Fp32HalvesTheStreamedBytes) {
  EXPECT_EQ(ax_bytes_per_dof_f32(), 32);
  EXPECT_EQ(ax_bytes_per_dof(), 64);
}

TEST(Precision, Fp32ValidationStillFires) {
  std::vector<float> tiny(8, 0.0f);
  AxArgsF32 bad;
  bad.u = tiny;
  bad.w = tiny;
  bad.g = tiny;
  bad.dx = tiny;
  bad.dxt = tiny;
  bad.n1d = 2;
  bad.n_elements = 2;  // sizes do not cover two elements
  EXPECT_THROW(ax_reference_f32(bad), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::kernels
