#include "kernels/mxm.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/ax.hpp"
#include "sem/geometry.hpp"

namespace semfpga::kernels {
namespace {

TEST(Mxm, SmallKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50].
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {5, 6, 7, 8};
  std::vector<double> c(4, -1.0);
  mxm(a.data(), 2, b.data(), 2, c.data(), 2);
  EXPECT_DOUBLE_EQ(c[0], 19.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
  EXPECT_DOUBLE_EQ(c[2], 43.0);
  EXPECT_DOUBLE_EQ(c[3], 50.0);
}

TEST(Mxm, RectangularShapes) {
  // (2x3) * (3x4).
  const std::vector<double> a = {1, 0, 2, 0, 1, -1};
  const std::vector<double> b = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<double> c(8, 0.0);
  mxm(a.data(), 2, b.data(), 3, c.data(), 4);
  // Row 0: a = (1, 0, 2): 1*row0 + 2*row2.
  EXPECT_DOUBLE_EQ(c[0], 1.0 + 2.0 * 9.0);
  EXPECT_DOUBLE_EQ(c[3], 4.0 + 2.0 * 12.0);
  // Row 1: a = (0, 1, -1): row1 - row2.
  EXPECT_DOUBLE_EQ(c[4], 5.0 - 9.0);
  EXPECT_DOUBLE_EQ(c[7], 8.0 - 12.0);
}

TEST(Mxm, AccumulatingVariantAdds) {
  const std::vector<double> a = {2.0};
  const std::vector<double> b = {3.0};
  std::vector<double> c = {10.0};
  mxm_acc(a.data(), 1, b.data(), 1, c.data(), 1);
  EXPECT_DOUBLE_EQ(c[0], 16.0);
}

TEST(Mxm, IdentityLeavesOperandUnchanged) {
  const std::size_t n = 5;
  std::vector<double> eye(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    eye[i * n + i] = 1.0;
  }
  SplitMix64 rng(3);
  std::vector<double> b(n * n);
  for (double& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  std::vector<double> c(n * n, 0.0);
  mxm(eye.data(), n, b.data(), n, c.data(), n);
  for (std::size_t i = 0; i < n * n; ++i) {
    EXPECT_DOUBLE_EQ(c[i], b[i]);
  }
}

/// The mxm-structured Ax must agree with the reference kernel on a
/// deformed mesh for all paper degrees (up to summation-order rounding).
class AxMxmSweep : public ::testing::TestWithParam<int> {};

TEST_P(AxMxmSweep, MatchesReferenceKernel) {
  const int degree = GetParam();
  sem::ReferenceElement ref(degree);
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = 2;
  spec.deformation = sem::Deformation::kTwist;
  spec.deformation_amplitude = 0.04;
  const sem::Mesh mesh(spec, ref);
  const sem::GeomFactors gf = sem::geometric_factors(mesh, ref);

  const std::size_t n = mesh.n_local();
  std::vector<double> u(n), w_ref(n, 0.0), w_mxm(n, 0.0);
  SplitMix64 rng(17);
  for (double& v : u) {
    v = rng.uniform(-1.0, 1.0);
  }

  AxArgs args;
  args.u = u;
  args.g = std::span<const double>(gf.g.data(), gf.g.size());
  args.dx = std::span<const double>(ref.deriv().d.data(), ref.deriv().d.size());
  args.dxt = std::span<const double>(ref.deriv().dt.data(), ref.deriv().dt.size());
  args.n1d = ref.n1d();
  args.n_elements = gf.n_elements;

  args.w = w_ref;
  ax_reference(args);
  args.w = w_mxm;
  ax_mxm(args);

  double scale = 0.0;
  for (double v : w_ref) {
    scale = std::max(scale, std::abs(v));
  }
  for (std::size_t p = 0; p < n; ++p) {
    ASSERT_NEAR(w_mxm[p], w_ref[p], 1e-12 * scale) << "dof " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, AxMxmSweep, ::testing::Values(1, 2, 3, 5, 7, 9, 11));

}  // namespace
}  // namespace semfpga::kernels
