/// Cross-variant equivalence matrix: every CPU kernel variant must agree
/// on every paper degree over deformed meshes and multiple random inputs.
/// This is the library's contract: any variant is substitutable inside
/// the solver.

#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/ax.hpp"
#include "sem/geometry.hpp"

namespace semfpga::kernels {
namespace {

enum class Variant { kFixed, kMxm, kSoa, kOmp };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kFixed: return "fixed";
    case Variant::kMxm: return "mxm";
    case Variant::kSoa: return "soa";
    case Variant::kOmp: return "omp";
  }
  return "?";
}

using MatrixCase = std::tuple<int, Variant, sem::Deformation>;

class VariantMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(VariantMatrix, AgreesWithReference) {
  const auto [degree, variant, deformation] = GetParam();

  sem::ReferenceElement ref(degree);
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = 2;
  spec.deformation = deformation;
  spec.deformation_amplitude = 0.04;
  const sem::Mesh mesh(spec, ref);
  const sem::GeomFactors gf = sem::geometric_factors(mesh, ref);

  const std::size_t n = mesh.n_local();
  std::vector<double> u(n), w_ref(n, 0.0), w_var(n, 0.0);
  SplitMix64 rng(1000 + static_cast<std::uint64_t>(degree));
  for (double& v : u) {
    v = rng.uniform(-1.0, 1.0);
  }

  AxArgs args;
  args.u = u;
  args.g = std::span<const double>(gf.g.data(), gf.g.size());
  args.dx = std::span<const double>(ref.deriv().d.data(), ref.deriv().d.size());
  args.dxt = std::span<const double>(ref.deriv().dt.data(), ref.deriv().dt.size());
  args.n1d = ref.n1d();
  args.n_elements = gf.n_elements;

  args.w = w_ref;
  ax_reference(args);
  args.w = w_var;

  switch (variant) {
    case Variant::kFixed:
      ax_fixed(args);
      break;
    case Variant::kMxm:
      ax_mxm(args);
      break;
    case Variant::kOmp:
      ax_omp(args);
      break;
    case Variant::kSoa: {
      const auto split = sem::split_geom(gf);
      AxSoaArgs soa;
      soa.u = args.u;
      soa.w = args.w;
      for (int c = 0; c < sem::kGeomComponents; ++c) {
        soa.g[static_cast<std::size_t>(c)] = split[static_cast<std::size_t>(c)];
      }
      soa.dx = args.dx;
      soa.dxt = args.dxt;
      soa.n1d = args.n1d;
      soa.n_elements = args.n_elements;
      ax_soa(soa);
      break;
    }
  }

  double scale = 0.0;
  for (double v : w_ref) {
    scale = std::max(scale, std::abs(v));
  }
  // mxm and the i-vectorised fixed kernel reorder the contractions (that is
  // the optimization); soa and omp are order-identical to the reference.
  const double tol =
      variant == Variant::kMxm || variant == Variant::kFixed ? 1e-12 * scale : 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    if (tol == 0.0) {
      ASSERT_DOUBLE_EQ(w_var[p], w_ref[p]) << variant_name(variant) << " dof " << p;
    } else {
      ASSERT_NEAR(w_var[p], w_ref[p], tol) << variant_name(variant) << " dof " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, VariantMatrix,
    ::testing::Combine(::testing::Values(1, 3, 5, 7, 9, 11, 13, 15),
                       ::testing::Values(Variant::kFixed, Variant::kMxm,
                                         Variant::kSoa, Variant::kOmp),
                       ::testing::Values(sem::Deformation::kSine,
                                         sem::Deformation::kTwist)),
    [](const ::testing::TestParamInfo<MatrixCase>& tpi) {
      std::string name = "N";
      name += std::to_string(std::get<0>(tpi.param));
      name += "_";
      name += variant_name(std::get<1>(tpi.param));
      name += "_";
      name += std::get<2>(tpi.param) == sem::Deformation::kSine ? "sine" : "twist";
      return name;
    });

}  // namespace
}  // namespace semfpga::kernels
