/// The fault-injection layer's own contracts: the spec grammar parses (and
/// rejects) deterministically, each fault fires exactly once at its scripted
/// coordinates, expired fabric deadlines surface as typed per-call-site
/// timeouts, and a crashing rank's poisoning is observed by every surviving
/// rank no matter which collective call-site it is blocked in.

#include <cmath>
#include <functional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/fabric.hpp"
#include "runtime/fault.hpp"
#include "runtime/spmd.hpp"

namespace semfpga::runtime {
namespace {

// ---------------------------------------------------------------- grammar --

TEST(FaultPlan, ParsesTheFullGrammar) {
  const FaultPlan plan =
      parse_fault_plan("crash@r2:i5,delay@r0:i3:s0.25,drop@r1:i4,nan@r1:i3,"
                       "bitflip@r0:i2,stall@r3:i6:s1.5");
  ASSERT_EQ(plan.faults.size(), 6u);

  EXPECT_EQ(plan.faults[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.faults[0].site, FaultSite::kIteration);
  EXPECT_EQ(plan.faults[0].rank, 2);
  EXPECT_EQ(plan.faults[0].iteration, 5);

  EXPECT_EQ(plan.faults[1].kind, FaultKind::kDelay);
  EXPECT_EQ(plan.faults[1].site, FaultSite::kHaloSend);
  EXPECT_DOUBLE_EQ(plan.faults[1].seconds, 0.25);

  EXPECT_EQ(plan.faults[2].kind, FaultKind::kDrop);
  EXPECT_EQ(plan.faults[3].kind, FaultKind::kNan);
  EXPECT_EQ(plan.faults[4].kind, FaultKind::kBitFlip);
  EXPECT_EQ(plan.faults[4].site, FaultSite::kHaloSend);

  EXPECT_EQ(plan.faults[5].kind, FaultKind::kStall);
  EXPECT_EQ(plan.faults[5].site, FaultSite::kAllreduce);
  EXPECT_EQ(plan.faults[5].rank, 3);
  EXPECT_EQ(plan.faults[5].iteration, 6);
  EXPECT_DOUBLE_EQ(plan.faults[5].seconds, 1.5);
}

TEST(FaultPlan, RequestLevelKindsParseToTheRequestSite) {
  const FaultPlan plan = parse_fault_plan("reject@r0:i7,timeout@r1:i3");
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kReject);
  EXPECT_EQ(plan.faults[0].site, FaultSite::kRequest);
  EXPECT_EQ(plan.faults[0].iteration, 7);  // the request sequence id
  EXPECT_EQ(plan.faults[1].kind, FaultKind::kTimeout);
  EXPECT_EQ(plan.faults[1].site, FaultSite::kRequest);
  EXPECT_EQ(plan.faults[1].iteration, 3);
}

TEST(FaultInjector, RequestHooksFireExactlyOnceAtTheirRequestId) {
  FaultInjector injector(parse_fault_plan("reject@r0:i2,timeout@r0:i5"));

  EXPECT_FALSE(injector.on_request_submit(0));
  EXPECT_FALSE(injector.on_request_submit(1));
  EXPECT_TRUE(injector.on_request_submit(2));
  EXPECT_FALSE(injector.on_request_submit(2));  // one-shot

  EXPECT_FALSE(injector.on_request_dequeue(2));  // reject spec != timeout hook
  EXPECT_TRUE(injector.on_request_dequeue(5));
  EXPECT_FALSE(injector.on_request_dequeue(5));

  const auto events = injector.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultKind::kReject);
  EXPECT_EQ(events[0].site, FaultSite::kRequest);
  EXPECT_EQ(events[0].iteration, 2);
  EXPECT_EQ(events[1].kind, FaultKind::kTimeout);
  EXPECT_EQ(events[1].iteration, 5);
  EXPECT_EQ(fault_kind_name(FaultKind::kReject), std::string("reject"));
  EXPECT_EQ(fault_kind_name(FaultKind::kTimeout), std::string("timeout"));
  EXPECT_EQ(fault_site_name(FaultSite::kRequest), std::string("request"));
}

TEST(FaultPlan, EmptySpecParsesToAnEmptyPlan) {
  EXPECT_TRUE(parse_fault_plan("").empty());
}

TEST(FaultPlan, RejectsMalformedSpecsNamingTheToken) {
  // Unknown kind, missing coordinates, and numeric garbage must all throw
  // std::invalid_argument naming the offending token.
  for (const char* bad : {"bogus@r0:i1", "crash", "crash@i5", "crash@r2",
                          "crash@rX:i5", "crash@r2:iY", "delay@r0:i3:sNaNsense",
                          "crash@r2:i5:x9"}) {
    EXPECT_THROW((void)parse_fault_plan(bad), std::invalid_argument) << bad;
  }
  try {
    (void)parse_fault_plan("bogus@r0:i1");
    FAIL() << "unknown kind must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

// --------------------------------------------------------------- injector --

TEST(FaultInjector, CrashFiresExactlyOnceAtItsCoordinates) {
  FaultInjector injector(parse_fault_plan("crash@r1:i3"));
  injector.begin_attempt(/*n_ranks=*/2, /*start_iteration=*/0);

  injector.on_iteration(1, 1);
  injector.on_iteration(1, 2);
  injector.on_iteration(0, 3);  // wrong rank: must not fire
  EXPECT_THROW(injector.on_iteration(1, 3), InjectedRankFailure);

  // One-shot: the restarted attempt passes the same coordinate unharmed.
  injector.begin_attempt(2, 0);
  injector.on_iteration(1, 3);
  injector.on_iteration(1, 4);

  const std::vector<FaultEvent> events = injector.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(events[0].rank, 1);
  EXPECT_EQ(events[0].iteration, 3);
  EXPECT_FALSE(events[0].to_string().empty());
}

TEST(FaultInjector, CrashCarriesRankAndIteration) {
  FaultInjector injector(parse_fault_plan("crash@r0:i2"));
  injector.begin_attempt(1, 0);
  injector.on_iteration(0, 1);
  try {
    injector.on_iteration(0, 2);
    FAIL() << "crash fault must throw";
  } catch (const InjectedRankFailure& e) {
    EXPECT_EQ(e.rank(), 0);
    EXPECT_EQ(e.iteration(), 2);
  }
}

TEST(FaultInjector, SendHooksCorruptDelayAndDrop) {
  FaultInjector injector(parse_fault_plan("nan@r0:i1,bitflip@r1:i1,drop@r2:i1"));
  injector.begin_attempt(4, 0);
  for (int r = 0; r < 4; ++r) {
    injector.on_iteration(r, 1);
  }

  std::vector<double> payload = {1.0, 2.0, 3.0};

  // nan: delivered, but the payload now carries a quiet NaN.
  EXPECT_TRUE(injector.on_send(0, 1, payload));
  EXPECT_TRUE(std::isnan(payload[0]));

  // bitflip: delivered, finite, and astronomically wrong.
  payload = {1.0, 2.0, 3.0};
  EXPECT_TRUE(injector.on_send(1, 0, payload));
  bool changed = false;
  for (const double v : payload) {
    EXPECT_TRUE(std::isfinite(v));
    changed = changed || (v != 1.0 && v != 2.0 && v != 3.0);
  }
  EXPECT_TRUE(changed);

  // drop: the message never leaves the sender.
  payload = {1.0, 2.0, 3.0};
  EXPECT_FALSE(injector.on_send(2, 3, payload));

  // Unscripted edges pass through untouched.
  payload = {1.0, 2.0, 3.0};
  EXPECT_TRUE(injector.on_send(3, 2, payload));
  EXPECT_EQ(payload, (std::vector<double>{1.0, 2.0, 3.0}));

  EXPECT_EQ(injector.events().size(), 3u);
}

TEST(FaultInjector, FaultsWaitUntilTheirIteration) {
  FaultInjector injector(parse_fault_plan("drop@r0:i5"));
  injector.begin_attempt(1, 0);
  std::vector<double> payload = {1.0};
  injector.on_iteration(0, 4);
  EXPECT_TRUE(injector.on_send(0, 0, payload));   // not yet due
  injector.on_iteration(0, 5);
  EXPECT_FALSE(injector.on_send(0, 0, payload));  // due now
}

TEST(FaultInjector, BeginAttemptResumesFromTheCheckpointIteration) {
  // A restart resuming from iteration 6 is already past a crash at i5: the
  // (unfired) fault becomes due immediately, modelling a rank that dies
  // again right after recovery only if the plan says so.
  FaultInjector injector(parse_fault_plan("crash@r0:i5"));
  injector.begin_attempt(1, /*start_iteration=*/6);
  EXPECT_THROW(injector.on_iteration(0, 7), InjectedRankFailure);
}

// ---------------------------------------------------------------- timeouts --

TEST(FabricTimeout, RecvDeadlineThrowsTypedErrorWithAttribution) {
  InProcessFabric fabric(2, 1, /*timeout_seconds=*/0.1);
  std::vector<double> msg(1);
  try {
    fabric.recv(0, 1, msg);  // no sender: must expire, not deadlock
    FAIL() << "recv with no sender must time out";
  } catch (const FabricTimeoutError& e) {
    EXPECT_EQ(e.site(), "recv");
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.peer(), 0);
    EXPECT_GE(e.waited_seconds(), 0.1);
  }
  const std::vector<FabricTimeoutEvent> events = fabric.timeout_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].site, "recv");
  EXPECT_EQ(events[0].rank, 1);
  EXPECT_EQ(events[0].peer, 0);
}

TEST(FabricTimeout, BarrierDeadlineSurfacesThroughSpmdRun) {
  // Rank 1 skips the barrier entirely; rank 0's bounded wait must expire
  // and spmd_run must rethrow the timeout (no other rank failed).
  InProcessFabric fabric(2, 1, /*timeout_seconds=*/0.1);
  try {
    spmd_run(fabric, 1, [&](const RankEnv& env) {
      if (env.rank == 0) {
        env.fabric->barrier(env.rank);
      }
    });
    FAIL() << "barrier with an absent peer must time out";
  } catch (const FabricTimeoutError& e) {
    EXPECT_EQ(e.site(), "barrier");
    EXPECT_EQ(e.rank(), 0);
    EXPECT_EQ(e.peer(), -1);
  }
}

TEST(FabricTimeout, DroppedHaloMessageBecomesARecvTimeout) {
  // The drop fault discards rank 0's send; rank 1's matching recv must
  // expire with full attribution instead of hanging the solve.
  FaultInjector injector(parse_fault_plan("drop@r0:i1"));
  InProcessFabric fabric(2, 1, /*timeout_seconds=*/0.1);
  fabric.set_fault_injector(&injector);
  injector.begin_attempt(2, 0);
  injector.on_iteration(0, 1);
  injector.on_iteration(1, 1);

  try {
    spmd_run(fabric, 1, [&](const RankEnv& env) {
      std::vector<double> msg = {42.0};
      if (env.rank == 0) {
        env.fabric->send(0, 1, msg);  // silently dropped
      } else {
        env.fabric->recv(0, 1, msg);
      }
    });
    FAIL() << "dropped message must surface as a recv timeout";
  } catch (const FabricTimeoutError& e) {
    EXPECT_EQ(e.site(), "recv");
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.peer(), 0);
  }
  ASSERT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.events()[0].kind, FaultKind::kDrop);
}

// ------------------------------------------------------ poison propagation --

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("scripted rank failure") {}
};

/// Crashes rank `victim` and parks every survivor in `wait`; asserts the
/// original error is rethrown and every survivor observed the poisoning.
void expect_poison_observed(
    const char* label, int n_ranks, int victim,
    const std::function<void(const RankEnv&)>& wait) {
  InProcessFabric fabric(n_ranks, static_cast<std::size_t>(n_ranks),
                         /*timeout_seconds=*/5.0);
  std::vector<int> observed(static_cast<std::size_t>(n_ranks), 0);
  try {
    spmd_run(fabric, 1, [&](const RankEnv& env) {
      if (env.rank == victim) {
        throw Boom();
      }
      try {
        wait(env);
      } catch (const FabricPoisonedError&) {
        observed[static_cast<std::size_t>(env.rank)] = 1;
        throw;
      }
    });
    FAIL() << label << ": the victim's error must be rethrown";
  } catch (const Boom&) {
    // The causal error wins over the survivors' collateral poisoning.
  }
  for (int r = 0; r < n_ranks; ++r) {
    if (r == victim) {
      continue;
    }
    EXPECT_EQ(observed[static_cast<std::size_t>(r)], 1)
        << label << ": rank " << r << " never observed the poisoning";
  }
}

TEST(PoisonPropagation, EverySurvivorObservesACrashAtEachCallSite) {
  constexpr int kRanks = 4;
  constexpr int kVictim = 2;

  expect_poison_observed("barrier", kRanks, kVictim, [](const RankEnv& env) {
    env.fabric->barrier(env.rank);
  });

  expect_poison_observed("allreduce", kRanks, kVictim, [](const RankEnv& env) {
    const std::vector<double> mine = {1.0};
    (void)env.fabric->allreduce_ordered(env.rank,
                                        static_cast<std::size_t>(env.rank), mine);
  });

  expect_poison_observed("recv", kRanks, kVictim, [kVictim](const RankEnv& env) {
    std::vector<double> msg(1);
    env.fabric->recv(kVictim, env.rank, msg);  // the victim never sends
  });
}

TEST(PoisonPropagation, InjectedCrashPoisonsLikeAnyOtherFailure) {
  // Same matrix entry via the injector: the crash fault thrown inside the
  // rank body must poison the fabric for the ranks parked at the barrier.
  FaultInjector injector(parse_fault_plan("crash@r1:i2"));
  InProcessFabric fabric(3, 3, /*timeout_seconds=*/5.0);
  fabric.set_fault_injector(&injector);
  injector.begin_attempt(3, 0);

  std::vector<int> observed(3, 0);
  try {
    spmd_run(fabric, 1, [&](const RankEnv& env) {
      try {
        injector.on_iteration(env.rank, 1);
        injector.on_iteration(env.rank, 2);  // rank 1 dies here
        env.fabric->barrier(env.rank);
      } catch (const FabricPoisonedError&) {
        observed[static_cast<std::size_t>(env.rank)] = 1;
        throw;
      }
    });
    FAIL() << "the injected failure must be rethrown";
  } catch (const InjectedRankFailure& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.iteration(), 2);
  }
  EXPECT_EQ(observed[0], 1);
  EXPECT_EQ(observed[2], 1);
}

}  // namespace
}  // namespace semfpga::runtime
