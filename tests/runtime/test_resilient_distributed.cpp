/// The resilient distributed driver's contracts: (1) with no faults
/// scripted, checkpointing-on is bitwise identical to the plain
/// solve_distributed_poisson (and to the single-rank oracle) at every
/// ranks × threads × backend combination; (2) the scripted fault matrix
/// {crash, delay, drop, nan, stall} × {1 rank, 4 ranks} either recovers to
/// the undisturbed tolerance or throws a typed error carrying a non-empty
/// report — and never deadlocks, because every blocking fabric call is
/// bounded.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "runtime/distributed_cg.hpp"
#include "solver/cg.hpp"
#include "solver/helmholtz_system.hpp"

namespace semfpga::runtime {
namespace {

constexpr double kPi = 3.14159265358979323846;

double forcing(double x, double y, double z) {
  return std::sin(kPi * x) * std::sin(kPi * y) * std::sin(kPi * z);
}

sem::BoxMeshSpec test_spec() {
  sem::BoxMeshSpec spec;
  spec.degree = 3;
  spec.nelx = 2;
  spec.nely = 2;
  spec.nelz = 4;
  return spec;
}

struct Reference {
  solver::CgResult cg;
  aligned_vector<double> x;
};

/// The single-rank oracle on the global mesh (Poisson or Helmholtz).
Reference single_rank(const sem::BoxMeshSpec& spec, const solver::CgOptions& options,
                      solver::OperatorKind kind = solver::OperatorKind::kPoisson,
                      double lambda = 1.0) {
  const sem::Mesh mesh = sem::box_mesh(spec);
  const std::unique_ptr<solver::PoissonSystem> system =
      kind == solver::OperatorKind::kHelmholtz
          ? std::make_unique<solver::HelmholtzSystem>(mesh, lambda)
          : std::make_unique<solver::PoissonSystem>(mesh);
  const std::size_t n = system->n_local();
  aligned_vector<double> f(n);
  aligned_vector<double> b(n);
  Reference ref;
  ref.x.assign(n, 0.0);
  system->sample(forcing, std::span<double>(f.data(), n));
  system->assemble_rhs(std::span<const double>(f.data(), n),
                       std::span<double>(b.data(), n));
  ref.cg = solver::solve_cg(*system, std::span<const double>(b.data(), n),
                            std::span<double>(ref.x.data(), n), options);
  return ref;
}

void expect_bitwise_equal(const Reference& want, const DistributedSolveResult& got,
                          const std::string& label) {
  ASSERT_EQ(got.cg.iterations, want.cg.iterations) << label;
  EXPECT_EQ(got.cg.converged, want.cg.converged) << label;
  EXPECT_EQ(got.cg.final_residual, want.cg.final_residual) << label;
  ASSERT_EQ(got.cg.residual_history.size(), want.cg.residual_history.size()) << label;
  for (std::size_t i = 0; i < want.cg.residual_history.size(); ++i) {
    ASSERT_EQ(got.cg.residual_history[i], want.cg.residual_history[i])
        << label << " iteration " << i;
  }
  ASSERT_EQ(got.x.size(), want.x.size()) << label;
  for (std::size_t p = 0; p < want.x.size(); ++p) {
    ASSERT_EQ(got.x[p], want.x[p]) << label << " dof " << p;
  }
}

/// Supervised-solve config over the shared test problem.
ResilientSolveConfig make_config(int ranks, const std::string& faults,
                                 const solver::CgOptions& options) {
  ResilientSolveConfig config;
  config.base.spec = test_spec();
  config.base.ranks = ranks;
  config.base.threads = 1;
  config.base.cg = options;
  config.base.forcing = forcing;
  config.base.fabric_timeout_seconds = 0.2;  // faults surface fast in tests
  config.faults = faults;
  config.checkpoint_every = 4;
  return config;
}

solver::CgOptions converging_options() {
  solver::CgOptions options;
  options.max_iterations = 60;
  options.tolerance = 1e-10;
  options.record_history = true;
  return options;
}

TEST(ResilientDistributed, FaultFreeCheckpointingIsBitwiseIdentical) {
  const sem::BoxMeshSpec spec = test_spec();
  solver::CgOptions options;
  options.max_iterations = 25;
  options.tolerance = 1e-12;
  options.use_jacobi = false;
  options.record_history = true;
  const Reference want = single_rank(spec, options);
  ASSERT_GT(want.cg.iterations, 4);

  for (const char* backend : {"cpu", "fpga-sim"}) {
    for (const int ranks : {1, 2, 4}) {
      for (const int threads : {1, 2}) {
        ResilientSolveConfig config = make_config(ranks, "", options);
        config.base.threads = threads;
        config.base.backend = backend;
        config.base.fabric_timeout_seconds = 30.0;
        const ResilientSolveResult got = solve_distributed_resilient(config);
        const std::string label = std::string(backend) + " ranks=" +
                                  std::to_string(ranks) + " threads=" +
                                  std::to_string(threads);
        expect_bitwise_equal(want, got.solve, label);
        EXPECT_EQ(got.final_ranks, ranks) << label;
        // Checkpoints were committed, but nothing else happened.
        EXPECT_GT(got.report.checkpoints_taken, 0) << label;
        EXPECT_TRUE(got.report.empty()) << label << "\n" << got.report.to_string();
      }
    }
  }
}

TEST(ResilientDistributed, CrashShrinksAndResolvesToTolerance) {
  const solver::CgOptions options = converging_options();
  const Reference want = single_rank(test_spec(), options);

  ResilientSolveConfig config = make_config(4, "crash@r2:i5", options);
  const ResilientSolveResult got = solve_distributed_resilient(config);

  EXPECT_EQ(got.final_ranks, 3);
  EXPECT_EQ(got.report.degraded_ranks, 1);
  EXPECT_GE(got.report.checkpoints_restored, 1);
  EXPECT_FALSE(got.report.events.empty());
  EXPECT_TRUE(got.solve.cg.converged);
  EXPECT_LE(got.solve.cg.final_residual, options.tolerance);
  // Recovery restarts CG from the committed x, so the trajectory differs —
  // but the answer must match the undisturbed solve to solver accuracy.
  ASSERT_EQ(got.solve.x.size(), want.x.size());
  for (std::size_t p = 0; p < want.x.size(); ++p) {
    ASSERT_NEAR(got.solve.x[p], want.x[p], 1e-8) << "dof " << p;
  }
}

TEST(ResilientDistributed, CrashAtTheRankFloorRetriesInPlace) {
  const solver::CgOptions options = converging_options();
  ResilientSolveConfig config = make_config(1, "crash@r0:i3", options);
  const ResilientSolveResult got = solve_distributed_resilient(config);

  EXPECT_EQ(got.final_ranks, 1);
  EXPECT_EQ(got.report.degraded_ranks, 0);
  EXPECT_GE(got.report.retries, 1);
  EXPECT_TRUE(got.solve.cg.converged);
  EXPECT_LE(got.solve.cg.final_residual, options.tolerance);
}

TEST(ResilientDistributed, DelayedHaloIsHarmlessAndBitwiseIdentical) {
  // A delay under the fabric deadline changes timing only: the iterates
  // must stay bitwise identical to the undisturbed solve.
  const solver::CgOptions options = converging_options();
  const Reference want = single_rank(test_spec(), options);

  ResilientSolveConfig config = make_config(4, "delay@r1:i2:s0.05", options);
  const ResilientSolveResult got = solve_distributed_resilient(config);

  EXPECT_EQ(got.report.timeouts, 0);
  EXPECT_EQ(got.report.numerical_faults, 0);
  ASSERT_EQ(got.report.events.size(), 1u);
  EXPECT_NE(got.report.events[0].find("delay"), std::string::npos);
  expect_bitwise_equal(want, got.solve, "delayed halo");
}

TEST(ResilientDistributed, DroppedHaloTimesOutAndRetries) {
  const solver::CgOptions options = converging_options();
  ResilientSolveConfig config = make_config(4, "drop@r1:i3", options);
  const ResilientSolveResult got = solve_distributed_resilient(config);

  EXPECT_GE(got.report.timeouts, 1);
  EXPECT_EQ(got.final_ranks, 4);
  EXPECT_TRUE(got.solve.cg.converged);
  EXPECT_LE(got.solve.cg.final_residual, options.tolerance);
}

TEST(ResilientDistributed, NanCorruptedHaloRollsBackCollectively) {
  const solver::CgOptions options = converging_options();
  ResilientSolveConfig config = make_config(4, "nan@r1:i5", options);
  const ResilientSolveResult got = solve_distributed_resilient(config);

  EXPECT_GE(got.report.numerical_faults, 1);
  EXPECT_EQ(got.final_ranks, 4);
  EXPECT_TRUE(got.solve.cg.converged);
  EXPECT_LE(got.solve.cg.final_residual, options.tolerance);
}

TEST(ResilientDistributed, StalledAllreduceTimesOutAndRetries) {
  const solver::CgOptions options = converging_options();
  // No :sSECONDS — the driver must default the stall past the 0.2 s fabric
  // deadline so the peers' bounded waits expire deterministically.
  ResilientSolveConfig config = make_config(4, "stall@r3:i4", options);
  const ResilientSolveResult got = solve_distributed_resilient(config);

  EXPECT_GE(got.report.timeouts, 1);
  EXPECT_EQ(got.final_ranks, 4);
  EXPECT_TRUE(got.solve.cg.converged);
  EXPECT_LE(got.solve.cg.final_residual, options.tolerance);
}

TEST(ResilientDistributed, SingleRankFaultMatrixNeverDeadlocks) {
  // At one rank there is no halo traffic and no peer to time out: halo
  // faults stay dormant, a stall only slows the solve, a crash retries in
  // place.  Every case must complete (bounded waits guarantee no deadlock).
  const solver::CgOptions options = converging_options();
  for (const char* faults :
       {"crash@r0:i3", "delay@r0:i2", "drop@r0:i3", "nan@r0:i5", "stall@r0:i4"}) {
    ResilientSolveConfig config = make_config(1, faults, options);
    const ResilientSolveResult got = solve_distributed_resilient(config);
    EXPECT_TRUE(got.solve.cg.converged) << faults;
    EXPECT_LE(got.solve.cg.final_residual, options.tolerance) << faults;
    EXPECT_EQ(got.final_ranks, 1) << faults;
  }
}

TEST(ResilientDistributed, HelmholtzSolveRecoversFromCorruption) {
  const solver::CgOptions options = converging_options();
  const Reference want =
      single_rank(test_spec(), options, solver::OperatorKind::kHelmholtz, 2.5);

  ResilientSolveConfig config = make_config(4, "nan@r2:i4", options);
  config.base.operator_kind = solver::OperatorKind::kHelmholtz;
  config.base.helmholtz_lambda = 2.5;
  const ResilientSolveResult got = solve_distributed_resilient(config);

  EXPECT_GE(got.report.numerical_faults, 1);
  EXPECT_TRUE(got.solve.cg.converged);
  ASSERT_EQ(got.solve.x.size(), want.x.size());
  for (std::size_t p = 0; p < want.x.size(); ++p) {
    ASSERT_NEAR(got.solve.x[p], want.x[p], 1e-8) << "dof " << p;
  }
}

TEST(ResilientDistributed, RepeatedCrashesExhaustTheBudget) {
  const solver::CgOptions options = converging_options();
  // One rank (no shrink possible) and more scripted crashes than retries.
  ResilientSolveConfig config =
      make_config(1, "crash@r0:i2,crash@r0:i4,crash@r0:i6,crash@r0:i8", options);
  config.max_retries = 2;
  try {
    (void)solve_distributed_resilient(config);
    FAIL() << "the crash script must exhaust the retry budget";
  } catch (const solver::ResilienceExhaustedError& e) {
    EXPECT_EQ(e.report().retries, 2);
    ASSERT_FALSE(e.report().events.empty());
    bool saw_rank_loss = false;
    for (const std::string& event : e.report().events) {
      saw_rank_loss = saw_rank_loss || event.find("rank loss") != std::string::npos;
    }
    EXPECT_TRUE(saw_rank_loss) << e.report().to_string();
  }
}

}  // namespace
}  // namespace semfpga::runtime
