/// runtime::partition_blocks — the generalized grid partition behind the
/// SPMD runtime: slab compatibility with solver::partition_slabs, prime
/// rank counts, single-element-deep axes, and the closed-form halo
/// accounting against the BlockHalo the runtime actually builds.

#include <numeric>
#include <stdexcept>

#include <gtest/gtest.h>

#include "runtime/partition.hpp"
#include "runtime/rank_system.hpp"
#include "runtime/spmd.hpp"
#include "solver/partition.hpp"

namespace semfpga::runtime {
namespace {

sem::BoxMeshSpec spec_of(int degree, int nelx, int nely, int nelz) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = nelx;
  spec.nely = nely;
  spec.nelz = nelz;
  return spec;
}

std::size_t global_elements(const sem::BoxMeshSpec& spec) {
  return static_cast<std::size_t>(spec.nelx) * static_cast<std::size_t>(spec.nely) *
         static_cast<std::size_t>(spec.nelz);
}

TEST(PartitionBlocks, SlabKindReproducesPartitionSlabs) {
  for (const auto& [nelz, ranks] : {std::pair{13, 4}, {10, 4}, {6, 3}, {8, 1}}) {
    const sem::BoxMeshSpec spec = spec_of(3, 5, 4, nelz);
    const solver::SlabPartition slabs = solver::partition_slabs(spec, ranks);
    const BlockPartition blocks = partition_blocks(spec, ranks, PartitionKind::kSlab);
    ASSERT_EQ(blocks.px, 1);
    ASSERT_EQ(blocks.py, 1);
    ASSERT_EQ(blocks.pz, ranks);
    for (int r = 0; r < ranks; ++r) {
      const auto& s = slabs.ranks[static_cast<std::size_t>(r)];
      const auto& b = blocks.ranks[static_cast<std::size_t>(r)];
      ASSERT_EQ(b.z_begin, s.z_begin) << "rank " << r;
      ASSERT_EQ(b.z_end, s.z_end) << "rank " << r;
      ASSERT_EQ(b.x_begin, 0);
      ASSERT_EQ(b.x_end, spec.nelx);
      ASSERT_EQ(b.y_begin, 0);
      ASSERT_EQ(b.y_end, spec.nely);
    }
  }
}

TEST(PartitionBlocks, PrimeRankCountsCoverTheBoxDisjointly) {
  for (const PartitionKind kind : {PartitionKind::kPencil, PartitionKind::kBlock3d}) {
    for (const int ranks : {3, 5, 7}) {
      const sem::BoxMeshSpec spec = spec_of(2, 8, 8, 4);
      const BlockPartition part = partition_blocks(spec, ranks, kind);
      ASSERT_EQ(part.ranks.size(), static_cast<std::size_t>(ranks));
      std::int64_t covered = 0;
      for (const RankBlock& rb : part.ranks) {
        ASSERT_GT(rb.n_elements, 0) << "empty rank in " << partition_kind_name(kind)
                                    << " at " << ranks << " ranks";
        ASSERT_EQ(rb.n_elements,
                  static_cast<std::int64_t>(rb.x_end - rb.x_begin) *
                      (rb.y_end - rb.y_begin) * (rb.z_end - rb.z_begin));
        covered += rb.n_elements;
      }
      ASSERT_EQ(covered, static_cast<std::int64_t>(global_elements(spec)));
    }
  }
}

TEST(PartitionBlocks, SingleElementDeepAxesStayUnsplit) {
  // A 1-element-deep axis can host at most one block layer; the chosen
  // factorisation must put all ranks on the other axes.
  const BlockPartition column =
      partition_blocks(spec_of(3, 1, 1, 8), 4, PartitionKind::kBlock3d);
  EXPECT_EQ(column.px, 1);
  EXPECT_EQ(column.py, 1);
  EXPECT_EQ(column.pz, 4);

  const BlockPartition sheet =
      partition_blocks(spec_of(3, 1, 4, 2), 2, PartitionKind::kPencil);
  EXPECT_EQ(sheet.px, 1);
  EXPECT_EQ(sheet.py, 2);
}

TEST(PartitionBlocks, RejectsInfeasibleSplits) {
  // More slab ranks than z element layers cannot factorise.
  try {
    (void)partition_blocks(spec_of(3, 2, 2, 4), 5, PartitionKind::kSlab);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cannot split more ranks than z element"),
              std::string::npos);
  }
  // A prime rank count larger than every axis cannot fit 3D blocks either.
  EXPECT_THROW((void)partition_blocks(spec_of(2, 2, 2, 2), 11, PartitionKind::kBlock3d),
               std::invalid_argument);
  EXPECT_THROW((void)partition_blocks(spec_of(2, 2, 2, 2), 0, PartitionKind::kSlab),
               std::invalid_argument);
}

/// The closed-form halo accounting in RankBlock must equal what the
/// runtime's BlockHalo actually schedules — neighbour count and the summed
/// message doubles, per rank, for every partition kind.  Prime rank counts
/// and a single-element-deep axis exercise uneven grids and edge rows.
TEST(PartitionBlocks, ClosedFormHaloMatchesBlockHaloSchedules) {
  struct Case {
    sem::BoxMeshSpec spec;
    int ranks;
    PartitionKind kind;
  };
  const Case cases[] = {
      {spec_of(2, 4, 4, 4), 3, PartitionKind::kPencil},
      {spec_of(2, 4, 4, 4), 8, PartitionKind::kBlock3d},
      {spec_of(3, 4, 1, 4), 4, PartitionKind::kBlock3d},  // 1-deep y axis
      {spec_of(2, 5, 3, 2), 5, PartitionKind::kPencil},   // prime, uneven
      {spec_of(3, 2, 3, 7), 4, PartitionKind::kSlab},     // uneven slabs
  };
  for (const Case& c : cases) {
    const sem::Mesh global = sem::box_mesh(c.spec);
    const BlockPartition part = partition_blocks(c.spec, c.ranks, c.kind);
    InProcessFabric fabric(c.ranks, global_elements(c.spec));
    spmd_run(fabric, 1, [&](const RankEnv& env) {
      RankSystem rs(global, part, env.rank, fabric, env.team_threads);
      const RankBlock& rb = part.ranks[static_cast<std::size_t>(env.rank)];
      EXPECT_EQ(rs.halo().halo_dofs(), rb.halo_doubles)
          << partition_kind_name(c.kind) << " ranks=" << c.ranks
          << " rank=" << env.rank;
      EXPECT_EQ(static_cast<int>(rs.halo().neighbor_ranks().size()), rb.n_neighbors)
          << partition_kind_name(c.kind) << " ranks=" << c.ranks
          << " rank=" << env.rank;
    });
  }
}

TEST(PartitionBlocks, InteriorElementsNeverExceedTheBlock) {
  const BlockPartition part =
      partition_blocks(spec_of(2, 4, 4, 4), 8, PartitionKind::kBlock3d);
  for (const RankBlock& rb : part.ranks) {
    EXPECT_GE(rb.n_interior_elements, 0);
    EXPECT_LT(rb.n_interior_elements, rb.n_elements);  // every block has surface
    // 2x2x2 block with three inter-rank faces: exactly one interior element.
    EXPECT_EQ(rb.n_interior_elements, 1);
  }
}

TEST(PartitionBlocks, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_partition_kind("slab"), PartitionKind::kSlab);
  EXPECT_EQ(parse_partition_kind("pencil"), PartitionKind::kPencil);
  EXPECT_EQ(parse_partition_kind("3d"), PartitionKind::kBlock3d);
  EXPECT_THROW((void)parse_partition_kind("cube"), std::invalid_argument);
  EXPECT_STREQ(partition_kind_name(PartitionKind::kPencil), "pencil");
}

}  // namespace
}  // namespace semfpga::runtime
