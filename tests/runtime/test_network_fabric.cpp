/// The latency seam: LatencyFabric must forward payloads and reduction
/// results bitwise while only adding wall-clock delay, FaultDelayPolicy
/// must claim each `delay@` spec exactly once through the injector, and
/// ModeledNetworkPolicy must charge exactly the NetworkSpec terms the
/// cluster projection model charges analytically.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "arch/network.hpp"
#include "runtime/fabric.hpp"
#include "runtime/fault.hpp"
#include "runtime/latency_fabric.hpp"
#include "runtime/spmd.hpp"

namespace semfpga::runtime {
namespace {

/// One exchange + both allreduce flavours over `fab`, returning everything
/// a decorator could corrupt: the received payload and the reduction
/// results per rank.
struct ExchangeResult {
  std::vector<double> received;
  double contiguous_sum = 0.0;
  double indexed_sum = 0.0;
};

ExchangeResult run_exchange(Fabric& fab) {
  ExchangeResult results[2];
  spmd_run(fab, 1, [&](const RankEnv& env) {
    ExchangeResult& r = results[env.rank];
    // Values with non-trivial mantissas so bit-level corruption would show.
    const std::vector<double> payload = {1.0 / 3.0, 2.0 / 7.0, 1e-300, -0.0};
    if (env.rank == 0) {
      env.fabric->send(0, 1, std::span<const double>(payload.data(), payload.size()));
    } else {
      r.received.assign(payload.size(), 0.0);
      env.fabric->recv(0, 1, std::span<double>(r.received.data(), r.received.size()));
    }
    const std::vector<double> contribution = {0.1 * (env.rank + 1),
                                              0.2 * (env.rank + 1)};
    r.contiguous_sum = env.fabric->allreduce_ordered(
        env.rank, 0, std::span<const double>(contribution.data(), contribution.size()));
    const std::vector<std::int64_t> slots = {1, 0};
    r.indexed_sum = env.fabric->allreduce_ordered(
        env.rank, std::span<const std::int64_t>(slots.data(), slots.size()),
        std::span<const double>(contribution.data(), contribution.size()));
  });
  // Rank 1 holds the received payload; reduction results are identical on
  // both ranks by the fabric contract (checked here once).
  EXPECT_EQ(results[0].contiguous_sum, results[1].contiguous_sum);
  EXPECT_EQ(results[0].indexed_sum, results[1].indexed_sum);
  ExchangeResult out = results[1];
  return out;
}

TEST(LatencyFabric, ForwardsPayloadsAndReductionsBitwise) {
  InProcessFabric bare(2, 2);
  const ExchangeResult want = run_exchange(bare);

  InProcessFabric inner(2, 2);
  LatencyFabric latency(inner);
  // A real (tiny) modeled network: the sleeps must not perturb numerics.
  latency.add_policy(std::make_unique<ModeledNetworkPolicy>(
      arch::NetworkSpec{/*latency_us=*/0.01, /*bandwidth_gbs=*/100.0}, 2));
  const ExchangeResult got = run_exchange(latency);

  ASSERT_EQ(got.received.size(), want.received.size());
  for (std::size_t i = 0; i < want.received.size(); ++i) {
    EXPECT_EQ(got.received[i], want.received[i]) << "payload word " << i;
  }
  EXPECT_EQ(got.contiguous_sum, want.contiguous_sum);
  EXPECT_EQ(got.indexed_sum, want.indexed_sum);
}

TEST(FaultDelayPolicy, ClaimsEachDelaySpecExactlyOnce) {
  FaultInjector injector(parse_fault_plan("delay@r0:i0:s0.25"));
  injector.begin_attempt(/*n_ranks=*/2, /*start_iteration=*/0);
  FaultDelayPolicy policy(injector);

  // The spec's seconds come back once, with the firing recorded...
  EXPECT_DOUBLE_EQ(policy.send_delay_seconds(0, 1, 64), 0.25);
  const std::vector<FaultEvent> events = injector.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kDelay);
  EXPECT_EQ(events[0].rank, 0);

  // ...and never again — not on the same edge, not from other ranks, not
  // on collectives (delay@ is a point-to-point link fault).
  EXPECT_DOUBLE_EQ(policy.send_delay_seconds(0, 1, 64), 0.0);
  EXPECT_DOUBLE_EQ(policy.send_delay_seconds(1, 0, 64), 0.0);
  EXPECT_DOUBLE_EQ(policy.collective_delay_seconds(0), 0.0);
  EXPECT_EQ(injector.events().size(), 1u);
}

TEST(ModeledNetworkPolicy, ChargesTheNetworkSpecTerms) {
  // 10 us latency, 1 GB/s: an 8000-byte message costs 10e-6 + 8e-6 s.
  ModeledNetworkPolicy policy(arch::NetworkSpec{10.0, 1.0}, /*n_ranks=*/4);
  EXPECT_DOUBLE_EQ(policy.send_delay_seconds(0, 1, 8000), 1.8e-5);
  // Each collective entry pays the fan-in/fan-out tree: 2 * log2(4) hops.
  EXPECT_DOUBLE_EQ(policy.collective_delay_seconds(0), 2.0 * 2.0 * 10.0e-6);

  // A single rank has no tree to climb.
  ModeledNetworkPolicy solo(arch::NetworkSpec{10.0, 1.0}, /*n_ranks=*/1);
  EXPECT_DOUBLE_EQ(solo.collective_delay_seconds(0), 0.0);
}

}  // namespace
}  // namespace semfpga::runtime
