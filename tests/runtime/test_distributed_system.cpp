/// Rank-local building blocks of the SPMD runtime against the single-rank
/// oracle: slab mesh extraction, corrected multiplicity/diagonal, the
/// two-level gather-scatter and the distributed operator/RHS — all bitwise.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "runtime/distributed_cg.hpp"
#include "runtime/rank_system.hpp"
#include "runtime/partition.hpp"
#include "runtime/spmd.hpp"

namespace semfpga::runtime {
namespace {

sem::BoxMeshSpec small_spec(int degree, int nelz,
                            sem::Deformation deformation = sem::Deformation::kNone) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = 2;
  spec.nely = 3;
  spec.nelz = nelz;
  spec.deformation = deformation;
  return spec;
}

/// Runs `body(rank_system, node_offset)` once per rank over `n_ranks`
/// z-slabs of `spec`.  Slabs own contiguous global element ranges, so a
/// single node offset still addresses each rank's slice of global vectors
/// (the pencil/3D generalization is covered by test_partition_oracle).
template <class Body>
void with_rank_systems(const sem::BoxMeshSpec& spec, int n_ranks, Body&& body) {
  const sem::Mesh global = sem::box_mesh(spec);
  const BlockPartition part = partition_blocks(spec, n_ranks, PartitionKind::kSlab);
  InProcessFabric fabric(n_ranks, static_cast<std::size_t>(spec.nelx) *
                                      static_cast<std::size_t>(spec.nely) *
                                      static_cast<std::size_t>(spec.nelz));
  const std::size_t ppe = global.points_per_element();
  spmd_run(fabric, 1, [&](const RankEnv& env) {
    RankSystem rs(global, part, env.rank, fabric, env.team_threads);
    const std::size_t offset =
        static_cast<std::size_t>(part.ranks[static_cast<std::size_t>(env.rank)].z_begin) *
        static_cast<std::size_t>(spec.nelx) * static_cast<std::size_t>(spec.nely) * ppe;
    body(rs, offset);
  });
}

TEST(SlabMesh, CoordinatesAndIdsRestrictTheParentBitwise) {
  for (const auto deformation : {sem::Deformation::kNone, sem::Deformation::kTwist}) {
    const sem::BoxMeshSpec spec = small_spec(3, 5, deformation);
    const sem::Mesh global = sem::box_mesh(spec);
    const sem::Mesh slab = sem::Mesh::extract_slab(global, 2, 4);

    EXPECT_EQ(slab.n_elements(), 2u * 3 * 2);
    EXPECT_EQ(slab.spec().nelz, 2);
    const std::size_t node_begin = 2u * 3 * 2 * global.points_per_element();
    for (std::size_t p = 0; p < slab.n_local(); ++p) {
      ASSERT_EQ(slab.x()[p], global.x()[node_begin + p]);
      ASSERT_EQ(slab.y()[p], global.y()[node_begin + p]);
      ASSERT_EQ(slab.z()[p], global.z()[node_begin + p]);
    }

    // Ids renumber the contiguous lattice range starting at the slab's
    // first plane; boundary flags restrict the parent's (so the slab's
    // interface planes are not domain boundary).
    const std::int64_t gx = 2 * 3 + 1;
    const std::int64_t gy = 3 * 3 + 1;
    const std::int64_t id_base = gx * gy * (2 * 3);
    for (std::size_t p = 0; p < slab.n_local(); ++p) {
      ASSERT_EQ(slab.global_id()[p], global.global_id()[node_begin + p] - id_base);
    }
    EXPECT_EQ(slab.n_global(), static_cast<std::size_t>(gx * gy * (2 * 3 + 1)));
    for (std::size_t g = 0; g < slab.n_global(); ++g) {
      ASSERT_EQ(slab.boundary_flag()[g],
                global.boundary_flag()[static_cast<std::size_t>(id_base) + g]);
    }
    // An interior point of the bottom interface plane must not be flagged.
    bool plane_has_interior = false;
    for (std::int64_t j = 1; j + 1 < gy && !plane_has_interior; ++j) {
      for (std::int64_t i = 1; i + 1 < gx; ++i) {
        if (slab.boundary_flag()[static_cast<std::size_t>(j * gx + i)] == 0) {
          plane_has_interior = true;
          break;
        }
      }
    }
    EXPECT_TRUE(plane_has_interior);
  }
}

TEST(SlabMesh, RejectsBadLayerRanges) {
  const sem::Mesh global = sem::box_mesh(small_spec(2, 4));
  EXPECT_THROW((void)sem::Mesh::extract_slab(global, 2, 2), std::invalid_argument);
  EXPECT_THROW((void)sem::Mesh::extract_slab(global, -1, 2), std::invalid_argument);
  EXPECT_THROW((void)sem::Mesh::extract_slab(global, 1, 5), std::invalid_argument);
}

TEST(RankSystem, CorrectedWeightsMatchTheGlobalSystem) {
  const sem::BoxMeshSpec spec = small_spec(3, 4);
  const sem::Mesh global_mesh = sem::box_mesh(spec);
  const solver::PoissonSystem global(global_mesh);
  for (const int ranks : {1, 2, 4}) {
    with_rank_systems(spec, ranks, [&](RankSystem& rs, std::size_t offset) {
      for (std::size_t p = 0; p < rs.n_local(); ++p) {
        ASSERT_EQ(rs.inv_multiplicity()[p], global.gs().inv_multiplicity()[offset + p])
            << "rank " << rs.rank() << " dof " << p;
        ASSERT_EQ(rs.jacobi_diagonal()[p], global.jacobi_diagonal()[offset + p])
            << "rank " << rs.rank() << " dof " << p;
      }
    });
  }
}

TEST(RankSystem, TwoLevelQqtMatchesTheGlobalQqt) {
  const sem::BoxMeshSpec spec = small_spec(3, 4);
  const sem::Mesh global_mesh = sem::box_mesh(spec);
  const solver::GatherScatter global_gs(global_mesh);

  std::vector<double> u(global_gs.n_local());
  SplitMix64 rng(99);
  for (double& v : u) {
    v = rng.uniform(-1.0, 1.0);
  }
  std::vector<double> want = u;
  global_gs.qqt(want);

  for (const int ranks : {2, 4}) {
    with_rank_systems(spec, ranks, [&](RankSystem& rs, std::size_t offset) {
      std::vector<double> local(u.begin() + static_cast<std::ptrdiff_t>(offset),
                                u.begin() + static_cast<std::ptrdiff_t>(offset) +
                                    static_cast<std::ptrdiff_t>(rs.n_local()));
      rs.qqt(std::span<double>(local.data(), local.size()));
      for (std::size_t p = 0; p < local.size(); ++p) {
        ASSERT_EQ(local[p], want[offset + p])
            << "ranks " << ranks << " rank " << rs.rank() << " dof " << p;
      }
    });
  }
}

TEST(RankSystem, DistributedApplyMatchesTheGlobalApplyBitwise) {
  const sem::BoxMeshSpec spec = small_spec(3, 4, sem::Deformation::kSine);
  const sem::Mesh global_mesh = sem::box_mesh(spec);
  solver::PoissonSystem global(global_mesh);

  // A continuous input field (equal copies of shared DOFs), like CG's p.
  aligned_vector<double> u(global.n_local());
  {
    SplitMix64 rng(5);
    std::vector<double> g(global.gs().n_global());
    for (double& v : g) {
      v = rng.uniform(-1.0, 1.0);
    }
    global.gs().gather(g, std::span<double>(u.data(), u.size()));
  }

  for (const bool fused : {true, false}) {
    global.set_fused(fused);
    aligned_vector<double> want(global.n_local());
    global.apply(std::span<const double>(u.data(), u.size()),
                 std::span<double>(want.data(), want.size()));

    for (const int ranks : {1, 2, 4}) {
      with_rank_systems(spec, ranks, [&](RankSystem& rs, std::size_t offset) {
        rs.system().set_fused(fused);
        aligned_vector<double> local_u(rs.n_local());
        aligned_vector<double> w(rs.n_local());
        for (std::size_t p = 0; p < rs.n_local(); ++p) {
          local_u[p] = u[offset + p];
        }
        rs.apply(std::span<const double>(local_u.data(), local_u.size()),
                 std::span<double>(w.data(), w.size()));
        for (std::size_t p = 0; p < rs.n_local(); ++p) {
          ASSERT_EQ(w[p], want[offset + p])
              << "fused " << fused << " ranks " << ranks << " rank " << rs.rank()
              << " dof " << p;
        }
      });
    }
  }
}

TEST(RankSystem, DistributedRhsAndDotMatchTheGlobalOnes) {
  const sem::BoxMeshSpec spec = small_spec(2, 4);
  const sem::Mesh global_mesh = sem::box_mesh(spec);
  solver::PoissonSystem global(global_mesh);
  const auto forcing = [](double x, double y, double z) {
    return std::sin(x + 0.5) * std::cos(y) + z;
  };

  const std::size_t n = global.n_local();
  aligned_vector<double> f(n);
  aligned_vector<double> b(n);
  global.sample(forcing, std::span<double>(f.data(), n));
  global.assemble_rhs(std::span<const double>(f.data(), n), std::span<double>(b.data(), n));
  const double want_dot = global.weighted_dot(std::span<const double>(b.data(), n),
                                              std::span<const double>(b.data(), n));

  for (const int ranks : {1, 2, 4}) {
    with_rank_systems(spec, ranks, [&](RankSystem& rs, std::size_t offset) {
      aligned_vector<double> lf(rs.n_local());
      aligned_vector<double> lb(rs.n_local());
      rs.sample(forcing, std::span<double>(lf.data(), lf.size()));
      rs.assemble_rhs(std::span<const double>(lf.data(), lf.size()),
                      std::span<double>(lb.data(), lb.size()));
      for (std::size_t p = 0; p < rs.n_local(); ++p) {
        ASSERT_EQ(lb[p], b[offset + p])
            << "ranks " << ranks << " rank " << rs.rank() << " dof " << p;
      }
      const double got = rs.dot(std::span<const double>(lb.data(), lb.size()),
                                std::span<const double>(lb.data(), lb.size()));
      ASSERT_EQ(got, want_dot) << "ranks " << ranks << " rank " << rs.rank();
    });
  }
}

TEST(RankSystem, HaloDofsMatchThePartitionAccounting) {
  const sem::BoxMeshSpec spec = small_spec(3, 4);
  const BlockPartition part = partition_blocks(spec, 4, PartitionKind::kSlab);
  with_rank_systems(spec, 4, [&](RankSystem& rs, std::size_t /*offset*/) {
    EXPECT_EQ(rs.halo().halo_dofs(),
              part.ranks[static_cast<std::size_t>(rs.rank())].halo_doubles);
  });
}

}  // namespace
}  // namespace semfpga::runtime
