/// The tentpole claim: the distributed CG's converged solution and
/// per-iteration residual history are bitwise identical to the single-rank
/// PoissonSystem + solve_cg path for ranks in {1, 2, 4}, across thread
/// budgets, fused/split operators and Jacobi/identity preconditioning.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/distributed_cg.hpp"
#include "solver/cg.hpp"
#include "solver/nekbone.hpp"

namespace semfpga::runtime {
namespace {

constexpr double kPi = 3.14159265358979323846;

double forcing(double x, double y, double z) {
  return std::sin(kPi * x) * std::sin(kPi * y) * std::sin(kPi * z);
}

struct Reference {
  solver::CgResult cg;
  aligned_vector<double> x;
};

/// The single-rank oracle: PoissonSystem + solve_cg on the global mesh.
Reference single_rank(const sem::BoxMeshSpec& spec, const solver::CgOptions& options,
                      bool fused) {
  const sem::Mesh mesh = sem::box_mesh(spec);
  solver::PoissonSystem system(mesh);
  system.set_fused(fused);
  const std::size_t n = system.n_local();
  aligned_vector<double> f(n);
  aligned_vector<double> b(n);
  Reference ref;
  ref.x.assign(n, 0.0);
  system.sample(forcing, std::span<double>(f.data(), n));
  system.assemble_rhs(std::span<const double>(f.data(), n), std::span<double>(b.data(), n));
  ref.cg = solver::solve_cg(system, std::span<const double>(b.data(), n),
                            std::span<double>(ref.x.data(), n), options);
  return ref;
}

void expect_bitwise_equal(const Reference& want, const DistributedSolveResult& got,
                          const std::string& label) {
  ASSERT_EQ(got.cg.iterations, want.cg.iterations) << label;
  EXPECT_EQ(got.cg.converged, want.cg.converged) << label;
  EXPECT_EQ(got.cg.final_residual, want.cg.final_residual) << label;
  ASSERT_EQ(got.cg.residual_history.size(), want.cg.residual_history.size()) << label;
  for (std::size_t i = 0; i < want.cg.residual_history.size(); ++i) {
    ASSERT_EQ(got.cg.residual_history[i], want.cg.residual_history[i])
        << label << " iteration " << i;
  }
  ASSERT_EQ(got.x.size(), want.x.size()) << label;
  for (std::size_t p = 0; p < want.x.size(); ++p) {
    ASSERT_EQ(got.x[p], want.x[p]) << label << " dof " << p;
  }
}

sem::BoxMeshSpec test_spec(sem::Deformation deformation = sem::Deformation::kNone) {
  sem::BoxMeshSpec spec;
  spec.degree = 3;
  spec.nelx = 2;
  spec.nely = 2;
  spec.nelz = 4;
  spec.deformation = deformation;
  return spec;
}

TEST(DistributedCg, BitwiseIdenticalAcrossRanksThreadsAndOperators) {
  const sem::BoxMeshSpec spec = test_spec();
  solver::CgOptions options;
  options.max_iterations = 25;
  options.tolerance = 1e-12;
  options.use_jacobi = false;
  options.record_history = true;

  for (const bool fused : {true, false}) {
    const Reference want = single_rank(spec, options, fused);
    ASSERT_GT(want.cg.iterations, 3);
    for (const int ranks : {1, 2, 4}) {
      for (const int threads : {1, 2}) {
        DistributedSolveConfig config;
        config.spec = spec;
        config.ranks = ranks;
        config.threads = threads;
        config.fused = fused;
        config.cg = options;
        config.forcing = forcing;
        const DistributedSolveResult got = solve_distributed_poisson(config);
        expect_bitwise_equal(want, got,
                             "fused=" + std::to_string(fused) + " ranks=" +
                                 std::to_string(ranks) + " threads=" +
                                 std::to_string(threads));
      }
    }
  }
}

TEST(DistributedCg, BitwiseIdenticalWithJacobiPreconditioning) {
  const sem::BoxMeshSpec spec = test_spec();
  solver::CgOptions options;
  options.max_iterations = 25;
  options.tolerance = 1e-12;
  options.use_jacobi = true;
  options.record_history = true;

  const Reference want = single_rank(spec, options, /*fused=*/true);
  for (const int ranks : {1, 2, 4}) {
    DistributedSolveConfig config;
    config.spec = spec;
    config.ranks = ranks;
    config.threads = 2;
    config.cg = options;
    config.forcing = forcing;
    const DistributedSolveResult got = solve_distributed_poisson(config);
    expect_bitwise_equal(want, got, "jacobi ranks=" + std::to_string(ranks));
  }
}

TEST(DistributedCg, BitwiseIdenticalOnDeformedMeshes) {
  const sem::BoxMeshSpec spec = test_spec(sem::Deformation::kTwist);
  solver::CgOptions options;
  options.max_iterations = 20;
  options.tolerance = 0.0;  // fixed iteration count
  options.use_jacobi = false;
  options.record_history = true;

  const Reference want = single_rank(spec, options, /*fused=*/true);
  for (const int ranks : {2, 4}) {
    DistributedSolveConfig config;
    config.spec = spec;
    config.ranks = ranks;
    config.threads = ranks;  // one thread per rank team
    config.cg = options;
    config.forcing = forcing;
    const DistributedSolveResult got = solve_distributed_poisson(config);
    expect_bitwise_equal(want, got, "twist ranks=" + std::to_string(ranks));
  }
}

TEST(DistributedCg, UnevenSlabsStayBitwiseIdentical) {
  // 5 layers over 2 and 4 ranks: remainder layers land on the first ranks.
  sem::BoxMeshSpec spec = test_spec();
  spec.nelz = 5;
  solver::CgOptions options;
  options.max_iterations = 15;
  options.tolerance = 0.0;
  options.record_history = true;

  const Reference want = single_rank(spec, options, /*fused=*/true);
  for (const int ranks : {2, 4}) {
    DistributedSolveConfig config;
    config.spec = spec;
    config.ranks = ranks;
    config.threads = 1;
    config.cg = options;
    config.forcing = forcing;
    const DistributedSolveResult got = solve_distributed_poisson(config);
    expect_bitwise_equal(want, got, "uneven ranks=" + std::to_string(ranks));
  }
}

TEST(DistributedCg, NekboneConfigRoutesRanksThroughTheRuntime) {
  solver::NekboneConfig config;
  config.degree = 3;
  config.nelx = config.nely = 2;
  config.nelz = 4;
  config.cg_iterations = 10;
  config.threads = 1;

  const solver::NekboneResult want = solver::run_nekbone(config);
  config.ranks = 2;
  const solver::NekboneResult got = solver::run_nekbone(config);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.final_residual, want.final_residual);  // bitwise
  EXPECT_EQ(got.n_dofs, want.n_dofs);
  EXPECT_EQ(got.flops, want.flops);
}

TEST(DistributedCg, RejectsMoreRanksThanLayers) {
  DistributedSolveConfig config;
  config.spec = test_spec();
  config.ranks = 8;  // nelz = 4
  config.forcing = forcing;
  EXPECT_THROW((void)solve_distributed_poisson(config), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::runtime
