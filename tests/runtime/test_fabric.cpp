/// Contract tests of the in-process Fabric: SPSC edge delivery, barrier
/// ordering, the determinism of the ordered allreduce, and the SPMD
/// launcher's team accounting and error propagation.

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "runtime/fabric.hpp"
#include "runtime/spmd.hpp"

namespace semfpga::runtime {
namespace {

TEST(Fabric, PointToPointDeliversInProgramOrder) {
  InProcessFabric fabric(2, 1);
  std::vector<double> got(3, 0.0);
  spmd_run(fabric, 1, [&](const RankEnv& env) {
    if (env.rank == 0) {
      for (double v : {1.0, 2.0, 3.0}) {
        const std::vector<double> msg = {v};
        env.fabric->send(0, 1, msg);
      }
    } else {
      for (std::size_t i = 0; i < got.size(); ++i) {
        std::vector<double> msg(1);
        env.fabric->recv(0, 1, msg);
        got[i] = msg[0];
      }
    }
  });
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Fabric, NeighbourExchangePatternDoesNotDeadlock) {
  // The halo pattern: every rank posts all sends before any receive.
  const int n_ranks = 4;
  InProcessFabric fabric(n_ranks, 1);
  std::vector<double> sums(n_ranks, 0.0);
  spmd_run(fabric, 1, [&](const RankEnv& env) {
    const std::vector<double> mine = {static_cast<double>(env.rank + 1)};
    if (env.rank > 0) {
      env.fabric->send(env.rank, env.rank - 1, mine);
    }
    if (env.rank < env.n_ranks - 1) {
      env.fabric->send(env.rank, env.rank + 1, mine);
    }
    double acc = 0.0;
    std::vector<double> msg(1);
    if (env.rank > 0) {
      env.fabric->recv(env.rank - 1, env.rank, msg);
      acc += msg[0];
    }
    if (env.rank < env.n_ranks - 1) {
      env.fabric->recv(env.rank + 1, env.rank, msg);
      acc += msg[0];
    }
    sums[static_cast<std::size_t>(env.rank)] = acc;
  });
  EXPECT_EQ(sums, (std::vector<double>{2.0, 4.0, 6.0, 3.0}));
}

TEST(Fabric, BarrierSeparatesPhases) {
  const int n_ranks = 3;
  InProcessFabric fabric(n_ranks, 1);
  std::atomic<int> phase1{0};
  std::vector<int> seen(n_ranks, -1);
  spmd_run(fabric, 1, [&](const RankEnv& env) {
    phase1.fetch_add(1);
    env.fabric->barrier(env.rank);
    // After the barrier every rank must observe all phase-1 arrivals.
    seen[static_cast<std::size_t>(env.rank)] = phase1.load();
  });
  for (const int s : seen) {
    EXPECT_EQ(s, n_ranks);
  }
}

TEST(Fabric, OrderedAllreduceMatchesTreeFoldOnEveryRank) {
  // 7 slots tiled 3 + 2 + 2 over 3 ranks.
  const std::vector<double> slots = {0.125, -3.5, 2.25, 1e-3, 7.0, -0.75, 42.0};
  InProcessFabric fabric(3, slots.size());
  std::vector<double> results(3, 0.0);
  spmd_run(fabric, 1, [&](const RankEnv& env) {
    const std::size_t begin = env.rank == 0 ? 0 : (env.rank == 1 ? 3 : 5);
    const std::size_t len = env.rank == 0 ? 3 : 2;
    const std::vector<double> mine(slots.begin() + static_cast<std::ptrdiff_t>(begin),
                                   slots.begin() + static_cast<std::ptrdiff_t>(begin + len));
    // Two rounds to confirm the slot table is reusable.
    double r = 0.0;
    for (int round = 0; round < 2; ++round) {
      r = env.fabric->allreduce_ordered(env.rank, begin, mine);
    }
    results[static_cast<std::size_t>(env.rank)] = r;
  });
  std::vector<double> copy = slots;
  const double want = tree_fold(copy);
  for (const double r : results) {
    EXPECT_EQ(r, want);  // bitwise: same canonical fold on every rank
  }
}

TEST(Spmd, TeamThreadsSplitsTheBudget) {
  EXPECT_EQ(team_threads(8, 2), 4);
  EXPECT_EQ(team_threads(8, 3), 2);
  EXPECT_EQ(team_threads(1, 4), 1);  // never below one thread per rank
  EXPECT_EQ(team_threads(5, 2), 2);
}

TEST(Spmd, RankExceptionsPropagateToTheCaller) {
  InProcessFabric fabric(2, 1);
  EXPECT_THROW(spmd_run(fabric, 1,
                        [&](const RankEnv& env) {
                          if (env.rank == 1) {
                            throw std::runtime_error("rank 1 failed");
                          }
                        }),
               std::runtime_error);
}

TEST(Spmd, FailingRankPoisonsPeersBlockedInCollectives) {
  // Rank 1 dies before its side of the exchange; rank 0 is already blocked
  // in recv.  The launcher must poison the fabric, wake rank 0, and rethrow
  // the *original* error — not FabricPoisonedError, and never deadlock.
  InProcessFabric fabric(2, 1);
  try {
    spmd_run(fabric, 1, [&](const RankEnv& env) {
      if (env.rank == 0) {
        std::vector<double> msg(1);
        env.fabric->recv(1, 0, msg);  // never satisfied
      } else {
        throw std::invalid_argument("rank 1 died during setup");
      }
    });
    FAIL() << "expected the rank error to propagate";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "rank 1 died during setup");
  }
}

TEST(Spmd, FailingRankWakesPeersBlockedInABarrier) {
  InProcessFabric fabric(3, 1);
  EXPECT_THROW(spmd_run(fabric, 1,
                        [&](const RankEnv& env) {
                          if (env.rank == 2) {
                            throw std::runtime_error("late rank failed");
                          }
                          env.fabric->barrier(env.rank);  // 2 never arrives
                        }),
               std::runtime_error);
}

TEST(Spmd, SingleRankRunsOnTheCallingThread) {
  InProcessFabric fabric(1, 4);
  int calls = 0;
  spmd_run(fabric, 3, [&](const RankEnv& env) {
    EXPECT_EQ(env.rank, 0);
    EXPECT_EQ(env.n_ranks, 1);
    EXPECT_EQ(env.team_threads, 3);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace semfpga::runtime
