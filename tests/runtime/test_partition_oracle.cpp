/// Cross-partition bitwise oracle: the generalized partitions (pencil, 3D
/// blocks), the overlapped halo schedule, and every thread split must all
/// reproduce the single-rank solve bit for bit — solution vector, residual
/// history, and iteration count.  Prime rank counts force uneven grids.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/distributed_cg.hpp"
#include "solver/cg.hpp"
#include "solver/helmholtz_system.hpp"

namespace semfpga::runtime {
namespace {

constexpr double kPi = 3.14159265358979323846;

double forcing(double x, double y, double z) {
  return std::sin(kPi * x) * std::sin(kPi * y) * std::sin(kPi * z);
}

struct Reference {
  solver::CgResult cg;
  aligned_vector<double> x;
};

Reference solve_reference(solver::PoissonSystem& system,
                          const solver::CgOptions& options) {
  const std::size_t n = system.n_local();
  aligned_vector<double> f(n);
  aligned_vector<double> b(n);
  Reference ref;
  ref.x.assign(n, 0.0);
  system.sample(forcing, std::span<double>(f.data(), n));
  system.assemble_rhs(std::span<const double>(f.data(), n),
                      std::span<double>(b.data(), n));
  ref.cg = solver::solve_cg(system, std::span<const double>(b.data(), n),
                            std::span<double>(ref.x.data(), n), options);
  return ref;
}

void expect_bitwise_equal(const Reference& want, const DistributedSolveResult& got,
                          const std::string& label) {
  ASSERT_EQ(got.cg.iterations, want.cg.iterations) << label;
  EXPECT_EQ(got.cg.final_residual, want.cg.final_residual) << label;
  ASSERT_EQ(got.cg.residual_history.size(), want.cg.residual_history.size()) << label;
  for (std::size_t i = 0; i < want.cg.residual_history.size(); ++i) {
    ASSERT_EQ(got.cg.residual_history[i], want.cg.residual_history[i])
        << label << " iteration " << i;
  }
  ASSERT_EQ(got.x.size(), want.x.size()) << label;
  for (std::size_t p = 0; p < want.x.size(); ++p) {
    ASSERT_EQ(got.x[p], want.x[p]) << label << " dof " << p;
  }
}

sem::BoxMeshSpec test_spec() {
  sem::BoxMeshSpec spec;
  spec.degree = 3;
  spec.nelx = 4;
  spec.nely = 4;
  spec.nelz = 4;
  return spec;
}

solver::CgOptions test_options() {
  solver::CgOptions options;
  options.max_iterations = 20;
  options.tolerance = 1e-12;
  options.use_jacobi = true;
  options.record_history = true;
  return options;
}

/// Every partition kind × rank count × overlap schedule × thread split
/// against the one single-rank reference.  Rank count 3 does not divide
/// the 4-element axes, so pencil picks an uneven 3x1 grid and 3d an
/// uneven axis split — the remainder-first ranges and the corner/edge
/// fold order get exercised, not just the symmetric cases.
TEST(PartitionOracle, AllKindsRanksOverlapAndThreadsMatchSingleRank) {
  const sem::BoxMeshSpec spec = test_spec();
  const solver::CgOptions options = test_options();
  const sem::Mesh mesh = sem::box_mesh(spec);
  solver::PoissonSystem system(mesh);
  const Reference want = solve_reference(system, options);

  for (const PartitionKind kind :
       {PartitionKind::kSlab, PartitionKind::kPencil, PartitionKind::kBlock3d}) {
    for (const int ranks : {2, 3, 4}) {
      for (const bool overlap : {false, true}) {
        for (const int threads : {ranks, 2 * ranks}) {
          DistributedSolveConfig config;
          config.spec = spec;
          config.ranks = ranks;
          config.threads = threads;
          config.partition = kind;
          config.overlap = overlap;
          config.cg = options;
          config.forcing = forcing;
          const DistributedSolveResult got = solve_distributed_poisson(config);
          expect_bitwise_equal(
              want, got,
              std::string(partition_kind_name(kind)) + " ranks=" +
                  std::to_string(ranks) + " overlap=" + std::to_string(overlap) +
                  " threads=" + std::to_string(threads));
        }
      }
    }
  }
}

/// The Helmholtz operator rides the same halo/fold machinery; one
/// overlapped 3D-block case pins the mass term through the generalized
/// path.
TEST(PartitionOracle, HelmholtzOverlapped3dBlocksMatchSingleRank) {
  const sem::BoxMeshSpec spec = test_spec();
  const solver::CgOptions options = test_options();
  const double lambda = 0.75;
  const sem::Mesh mesh = sem::box_mesh(spec);
  solver::HelmholtzSystem system(mesh, lambda);
  const Reference want = solve_reference(system, options);

  DistributedSolveConfig config;
  config.spec = spec;
  config.ranks = 4;
  config.threads = 4;
  config.partition = PartitionKind::kBlock3d;
  config.overlap = true;
  config.operator_kind = solver::OperatorKind::kHelmholtz;
  config.helmholtz_lambda = lambda;
  config.cg = options;
  config.forcing = forcing;
  const DistributedSolveResult got = solve_distributed_poisson(config);
  expect_bitwise_equal(want, got, "helmholtz 3d overlap");
}

/// The split (non-fused) operator goes through the same generalized
/// scatter; a pencil case covers it.
TEST(PartitionOracle, SplitOperatorPencilMatchesSingleRank) {
  const sem::BoxMeshSpec spec = test_spec();
  const solver::CgOptions options = test_options();
  const sem::Mesh mesh = sem::box_mesh(spec);
  solver::PoissonSystem system(mesh);
  system.set_fused(false);
  const Reference want = solve_reference(system, options);

  DistributedSolveConfig config;
  config.spec = spec;
  config.ranks = 3;
  config.threads = 3;
  config.partition = PartitionKind::kPencil;
  config.overlap = true;
  config.fused = false;
  config.cg = options;
  config.forcing = forcing;
  const DistributedSolveResult got = solve_distributed_poisson(config);
  expect_bitwise_equal(want, got, "split pencil overlap");
}

}  // namespace
}  // namespace semfpga::runtime
