#include "fpga/memory.hpp"

#include <gtest/gtest.h>

namespace semfpga::fpga {
namespace {

MemorySpec gx_mem() { return stratix10_gx2800().memory; }

TEST(Memory, InterleavedSaturatesAtHalfPeak) {
  // Section III-D: interleaving "seldom can reach peak bandwidth"
  // regardless of burst size.
  const ExternalMemoryModel mem(gx_mem(), MemAllocation::kInterleaved);
  EXPECT_DOUBLE_EQ(mem.steady_efficiency(64.0, 8), 0.5);
  EXPECT_DOUBLE_EQ(mem.steady_efficiency(1 << 20, 8), 0.5);
}

TEST(Memory, BankedEfficiencyGrowsWithBurstSize) {
  const ExternalMemoryModel mem(gx_mem(), MemAllocation::kBanked);
  double prev = 0.0;
  for (double burst : {64.0, 512.0, 4096.0, 32768.0}) {
    const double eff = mem.steady_efficiency(burst, 8);
    EXPECT_GT(eff, prev);
    prev = eff;
  }
  EXPECT_GT(prev, 0.95);  // large bursts approach peak
}

TEST(Memory, BankedBeatsInterleavedForKernelBursts) {
  // The paper's III-D observation: banking wins for this access pattern
  // (per-element bursts are >= 512 B from N=3 up).
  const ExternalMemoryModel banked(gx_mem(), MemAllocation::kBanked);
  const ExternalMemoryModel inter(gx_mem(), MemAllocation::kInterleaved);
  for (int n1d : {4, 8, 12, 16}) {
    EXPECT_GT(banked.kernel_efficiency(n1d), inter.kernel_efficiency(n1d))
        << "n1d=" << n1d;
  }
}

TEST(Memory, MoreStreamsPerBankCostMore) {
  const ExternalMemoryModel mem(gx_mem(), MemAllocation::kBanked);
  EXPECT_GT(mem.steady_efficiency(512.0, 4), mem.steady_efficiency(512.0, 16));
}

TEST(Memory, DofRateIsEfficiencyTimesPeakOver64) {
  const ExternalMemoryModel mem(gx_mem(), MemAllocation::kBanked);
  const double eff = mem.kernel_efficiency(8);
  EXPECT_NEAR(mem.dof_rate(8), eff * 76.8e9 / 64.0, 1.0);
}

TEST(Memory, TransferTimeHasFixedOverhead) {
  const ExternalMemoryModel mem(gx_mem(), MemAllocation::kBanked);
  const double t_zero = mem.transfer_seconds(0.0, 8);
  EXPECT_NEAR(t_zero, gx_mem().invocation_overhead_us * 1e-6, 1e-12);
  const double t_big = mem.transfer_seconds(76.8e9, 8);  // ~1 s of data
  EXPECT_GT(t_big, 1.0);
}

TEST(Memory, EfficiencyIsClamped) {
  const ExternalMemoryModel mem(gx_mem(), MemAllocation::kBanked);
  EXPECT_GE(mem.steady_efficiency(1.0, 128), 0.05);
  EXPECT_LE(mem.steady_efficiency(1e12, 1), 1.0);
}

TEST(Memory, RejectsBadArguments) {
  const ExternalMemoryModel mem(gx_mem(), MemAllocation::kBanked);
  EXPECT_THROW((void)mem.steady_efficiency(0.0, 8), std::invalid_argument);
  EXPECT_THROW((void)mem.steady_efficiency(64.0, 0), std::invalid_argument);
  EXPECT_THROW((void)mem.transfer_seconds(-1.0, 8), std::invalid_argument);
  MemorySpec bad = gx_mem();
  bad.peak_gbs = 0.0;
  EXPECT_THROW(ExternalMemoryModel(bad, MemAllocation::kBanked),
               std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::fpga
