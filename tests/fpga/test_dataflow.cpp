/// Validates the closed-form cycle model against the event-level dataflow
/// simulation — the standard cross-check for cycle-approximate models.

#include "fpga/dataflow.hpp"

#include <gtest/gtest.h>

#include "fpga/accelerator.hpp"
#include "fpga/paper_data.hpp"

namespace semfpga::fpga {
namespace {

PipelineShape shape_for(int degree, double mem_eff = 0.9) {
  const DeviceSpec device = stratix10_gx2800();
  const KernelConfig config = KernelConfig::banked(degree);
  const SynthesisReport report = synthesize(device, config);
  return pipeline_shape(device, config, report, 274.0, mem_eff);
}

class DataflowSweep : public ::testing::TestWithParam<int> {};

TEST_P(DataflowSweep, EventSimulationMatchesClosedForm) {
  const PipelineShape shape = shape_for(GetParam());
  for (std::size_t n : {16u, 256u, 4096u}) {
    const DataflowResult sim = simulate_dataflow(shape, n);
    const double closed = closed_form_cycles(shape, n);
    EXPECT_NEAR(sim.total_cycles / closed, 1.0, 0.05)
        << "N=" << GetParam() << " elements=" << n;
  }
}

TEST_P(DataflowSweep, StageOccupanciesAreFractions) {
  const PipelineShape shape = shape_for(GetParam());
  const DataflowResult sim = simulate_dataflow(shape, 512);
  EXPECT_GT(sim.load_busy, 0.0);
  EXPECT_LE(sim.load_busy, 1.0);
  EXPECT_GT(sim.compute_busy, 0.0);
  EXPECT_LE(sim.compute_busy, 1.0);
  EXPECT_GT(sim.store_busy, 0.0);
  EXPECT_LE(sim.store_busy, 1.0);
  // The shared memory channel cannot be more than fully busy.
  EXPECT_LE(sim.load_busy + sim.store_busy, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Degrees, DataflowSweep, ::testing::Values(3, 7, 11, 15));

TEST(Dataflow, BankedKernelsAreMemoryBottlenecked) {
  // On the GX2800 the banked designs saturate the memory channel — the
  // paper's central observation (T_B = 4 decides everything).
  for (int degree : {7, 11, 15}) {
    const DataflowResult sim = simulate_dataflow(shape_for(degree), 2048);
    EXPECT_STREQ(sim.bottleneck, "memory") << "N=" << degree;
    EXPECT_GT(sim.load_busy + sim.store_busy, 0.95) << "N=" << degree;
  }
}

TEST(Dataflow, ComputeBottleneckWhenMemoryIsFast) {
  // With a 10x faster memory the compute stage becomes the bottleneck.
  PipelineShape shape = shape_for(7);
  shape.load_cycles /= 10.0;
  shape.store_cycles /= 10.0;
  const DataflowResult sim = simulate_dataflow(shape, 2048);
  EXPECT_STREQ(sim.bottleneck, "compute");
  EXPECT_GT(sim.compute_busy, 0.95);
}

TEST(Dataflow, FillCostVanishesAtScale) {
  const PipelineShape shape = shape_for(7);
  const double small = simulate_dataflow(shape, 8).total_cycles / 8.0;
  const double large = simulate_dataflow(shape, 8192).total_cycles / 8192.0;
  EXPECT_GT(small, large);  // per-element cost amortises
  EXPECT_NEAR(large, std::max(shape.load_cycles + shape.store_cycles,
                              shape.compute_cycles),
              0.02 * large);
}

TEST(Dataflow, SingleBufferSerialisesThePipeline) {
  // With one buffer slot, load e+1 waits for compute e: throughput drops.
  PipelineShape dbl = shape_for(7);
  PipelineShape single = dbl;
  single.buffer_slots = 1;
  const double t2 = simulate_dataflow(dbl, 1024).total_cycles;
  const double t1 = simulate_dataflow(single, 1024).total_cycles;
  EXPECT_GT(t1, t2);
}

TEST(Dataflow, AgreesWithAcceleratorSteadyRateWhenMemoryBound) {
  // Cross-validation against SemAccelerator's closed-form DOF rate at the
  // same memory efficiency (banked model, no fixtures).
  const DeviceSpec device = stratix10_gx2800();
  const KernelConfig config = KernelConfig::banked(7);
  const SynthesisReport report = synthesize(device, config);
  const ExternalMemoryModel mem(device.memory, MemAllocation::kBanked);
  const double eff = mem.kernel_efficiency(8);

  SemAccelerator probe(device, config);
  probe.set_use_measured_calibration(false);
  const PipelineShape shape =
      pipeline_shape(device, config, report, probe.clock_mhz(), eff);

  const std::size_t n = 4096;
  const DataflowResult sim = simulate_dataflow(shape, n);
  const double dofs = static_cast<double>(n) * 512.0;
  const double sim_dofs_per_cycle = dofs / sim.total_cycles;

  const double model_dofs_per_cycle = probe.estimate_steady(n).dofs_per_cycle;
  // The event sim serialises loads and stores on one channel; the closed
  // form folds both into one effective bandwidth — agreement within 10%.
  EXPECT_NEAR(sim_dofs_per_cycle / model_dofs_per_cycle, 1.0, 0.10);
}

TEST(Dataflow, RejectsBadInputs) {
  const PipelineShape shape = shape_for(3);
  EXPECT_THROW((void)simulate_dataflow(shape, 0), std::invalid_argument);
  PipelineShape bad = shape;
  bad.buffer_slots = 0;
  EXPECT_THROW((void)simulate_dataflow(bad, 8), std::invalid_argument);
  const DeviceSpec device = stratix10_gx2800();
  const KernelConfig config = KernelConfig::banked(3);
  const SynthesisReport report = synthesize(device, config);
  EXPECT_THROW((void)pipeline_shape(device, config, report, 0.0, 0.9),
               std::invalid_argument);
  EXPECT_THROW((void)pipeline_shape(device, config, report, 274.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::fpga
