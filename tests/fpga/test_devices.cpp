#include "fpga/device.hpp"

#include <gtest/gtest.h>

namespace semfpga::fpga {
namespace {

TEST(Devices, Gx2800MatchesPublishedSpecs) {
  const DeviceSpec d = stratix10_gx2800();
  EXPECT_EQ(d.name, "Stratix 10 GX2800");
  EXPECT_DOUBLE_EQ(d.total.alms, 933120.0);
  EXPECT_DOUBLE_EQ(d.total.dsps, 5760.0);
  EXPECT_DOUBLE_EQ(d.total.brams, 11721.0);
  // 4 banks x 512 bit x 300 MHz = 76.8 GB/s (Table II).
  EXPECT_DOUBLE_EQ(d.memory.peak_gbs, 76.8);
  EXPECT_DOUBLE_EQ(d.memory.peak_gbs * 1e9,
                   d.memory.n_banks * (d.memory.bus_bits / 8.0) *
                       d.memory.controller_mhz * 1e6);
}

TEST(Devices, BaseFitsInsideEveryDevice) {
  for (const DeviceSpec& d : {stratix10_gx2800(), agilex_027(), stratix10_10m(),
                              stratix10_10m_enhanced(), ideal_cfd_fpga()}) {
    EXPECT_TRUE(d.base.fits_within(d.total)) << d.name;
    EXPECT_GT(d.memory.peak_gbs, 0.0) << d.name;
  }
}

TEST(Devices, Stratix10MScalesLogicBy3_6x) {
  const DeviceSpec gx = stratix10_gx2800();
  const DeviceSpec m10 = stratix10_10m();
  EXPECT_NEAR(m10.total.alms / gx.total.alms, 3.6, 1e-12);
  EXPECT_NEAR(m10.total.dsps, 5700.0, 1.0);
}

TEST(Devices, EnhancedVariantOnlyChangesDspsAndBandwidth) {
  const DeviceSpec base = stratix10_10m();
  const DeviceSpec enh = stratix10_10m_enhanced();
  EXPECT_DOUBLE_EQ(enh.total.alms, base.total.alms);
  EXPECT_DOUBLE_EQ(enh.total.brams, base.total.brams);
  EXPECT_NEAR(enh.total.dsps, 8700.0, 1.0);
  EXPECT_GT(enh.memory.peak_gbs, base.memory.peak_gbs);
}

TEST(Devices, IdealDeviceMatchesSectionVD) {
  // "6.2 million ALMs (factor 6x larger), has 20k DSPs ... 12.9k BRAMs
  // (only 10% more than our current) ... 1.2 TB/s".
  const DeviceSpec ideal = ideal_cfd_fpga();
  EXPECT_DOUBLE_EQ(ideal.total.alms, 6.2e6);
  EXPECT_DOUBLE_EQ(ideal.total.dsps, 20000.0);
  EXPECT_NEAR(ideal.total.brams / stratix10_gx2800().total.brams, 1.10, 0.01);
  EXPECT_NEAR(ideal.memory.peak_gbs, 1228.8, 0.1);
  EXPECT_EQ(ideal.op_cost.name, "hardened-fp64");
}

TEST(Devices, EnvelopeUsesProjectionClockByDefault) {
  const DeviceSpec d = stratix10_gx2800();
  EXPECT_DOUBLE_EQ(d.envelope().clock_hz, 300e6);
  EXPECT_DOUBLE_EQ(d.envelope(250.0).clock_hz, 250e6);
}

}  // namespace
}  // namespace semfpga::fpga
