/// BK5-style Helmholtz kernel on the simulated accelerator: functional
/// equality with the CPU reference and the expected performance shift
/// (intensity rises, bandwidth-bound throughput drops by 8/9).

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fpga/accelerator.hpp"

namespace semfpga::fpga {
namespace {

KernelConfig bk5_config(int degree) {
  KernelConfig cfg = KernelConfig::banked(degree);
  cfg.kind = KernelKind::kHelmholtz;
  return cfg;
}

struct Bk5Operands {
  explicit Bk5Operands(int degree) : ref(degree) {
    sem::BoxMeshSpec spec;
    spec.degree = degree;
    spec.nelx = spec.nely = spec.nelz = 2;
    spec.deformation = sem::Deformation::kSine;
    spec.deformation_amplitude = 0.03;
    mesh = std::make_unique<sem::Mesh>(spec, ref);
    gf = sem::geometric_factors(*mesh, ref);
    const std::size_t n = mesh->n_local();
    u.resize(n);
    w.assign(n, 0.0);
    SplitMix64 rng(31);
    for (double& v : u) {
      v = rng.uniform(-1.0, 1.0);
    }
    args.ax.u = u;
    args.ax.w = w;
    args.ax.g = std::span<const double>(gf.g.data(), gf.g.size());
    args.ax.dx = std::span<const double>(ref.deriv().d.data(), ref.deriv().d.size());
    args.ax.dxt = std::span<const double>(ref.deriv().dt.data(), ref.deriv().dt.size());
    args.ax.n1d = ref.n1d();
    args.ax.n_elements = gf.n_elements;
    args.mass = std::span<const double>(gf.mass.data(), gf.mass.size());
    args.lambda = 1.5;
  }
  sem::ReferenceElement ref;
  std::unique_ptr<sem::Mesh> mesh;
  sem::GeomFactors gf;
  std::vector<double> u, w;
  kernels::HelmholtzArgs args;
};

class Bk5Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Bk5Sweep, FunctionalMatchWithCpuReference) {
  const int degree = GetParam();
  Bk5Operands cpu(degree);
  Bk5Operands sim(degree);
  kernels::helmholtz_reference(cpu.args);
  const SemAccelerator acc(stratix10_gx2800(), bk5_config(degree));
  acc.run(sim.args);
  for (std::size_t p = 0; p < cpu.w.size(); ++p) {
    ASSERT_DOUBLE_EQ(cpu.w[p], sim.w[p]);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, Bk5Sweep, ::testing::Values(2, 5, 7));

TEST(Bk5Accelerator, TrafficIncludesTheSeventhFactor) {
  const SemAccelerator poisson(stratix10_gx2800(), KernelConfig::banked(7));
  const SemAccelerator bk5(stratix10_gx2800(), bk5_config(7));
  const RunStats sp = poisson.estimate_steady(1024);
  const RunStats sb = bk5.estimate_steady(1024);
  // 72 bytes/DOF vs 64.
  EXPECT_NEAR(sb.bytes_transferred / sp.bytes_transferred, 72.0 / 64.0, 1e-9);
}

TEST(Bk5Accelerator, ExtraStreamQuantisesTheDesignDown) {
  // The 9th stream raises bytes/DOF to 72, so T_B drops from 4 to 3.56 —
  // and the paper's power-of-two design rule quantises the BK5 kernel to
  // T = 2 where the Poisson kernel builds T = 4.
  const SemAccelerator poisson(stratix10_gx2800(), KernelConfig::banked(7));
  const SemAccelerator bk5(stratix10_gx2800(), bk5_config(7));
  EXPECT_EQ(poisson.report().t_design, 4);
  EXPECT_EQ(bk5.report().t_design, 2);
  const double ratio = bk5.estimate_steady(4096).dof_rate /
                       poisson.estimate_steady(4096).dof_rate;
  EXPECT_GT(ratio, 0.45);
  EXPECT_LT(ratio, 0.95);
}

TEST(Bk5Accelerator, GflopsReflectTheQuantisationPenalty) {
  // The extra FLOPs per DOF cannot make up for the halved lane count:
  // GFLOP/s drops but stays within the quantisation envelope.
  const SemAccelerator poisson(stratix10_gx2800(), KernelConfig::banked(7));
  const SemAccelerator bk5(stratix10_gx2800(), bk5_config(7));
  const double gp = poisson.estimate_steady(4096).gflops;
  const double gb = bk5.estimate_steady(4096).gflops;
  EXPECT_GT(gb, 0.45 * gp);
  EXPECT_LT(gb, 1.0 * gp);
}

TEST(Bk5Accelerator, UsesTheModelNotTheTable1Fixture) {
  const SemAccelerator bk5(stratix10_gx2800(), bk5_config(7));
  EXPECT_FALSE(bk5.measured_calibration_active());
}

TEST(Bk5Accelerator, KindMismatchIsRejected) {
  Bk5Operands ops(5);
  const SemAccelerator poisson(stratix10_gx2800(), KernelConfig::banked(5));
  EXPECT_THROW(poisson.run(ops.args), std::invalid_argument);

  const SemAccelerator bk5(stratix10_gx2800(), bk5_config(5));
  kernels::AxArgs plain = ops.args.ax;
  EXPECT_THROW(bk5.run(plain), std::invalid_argument);
}

TEST(Bk5Accelerator, SynthesisCostsMoreThanPoisson) {
  const SynthesisReport p = synthesize(stratix10_gx2800(), KernelConfig::banked(9));
  const SynthesisReport b = synthesize(stratix10_gx2800(), bk5_config(9));
  EXPECT_GT(b.used.alms, p.used.alms);
  EXPECT_GT(b.used.dsps, p.used.dsps);
}

}  // namespace
}  // namespace semfpga::fpga
