#include "fpga/accelerator.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sem/geometry.hpp"

namespace semfpga::fpga {
namespace {

/// Real operands on a deformed mesh for functional checks.
struct Operands {
  explicit Operands(int degree, int nel = 2) : ref(degree) {
    sem::BoxMeshSpec spec;
    spec.degree = degree;
    spec.nelx = spec.nely = spec.nelz = nel;
    spec.deformation = sem::Deformation::kSine;
    spec.deformation_amplitude = 0.04;
    mesh = std::make_unique<sem::Mesh>(spec, ref);
    gf = sem::geometric_factors(*mesh, ref);
    const std::size_t n = mesh->n_local();
    u.resize(n);
    w.assign(n, 0.0);
    SplitMix64 rng(99);
    for (double& v : u) {
      v = rng.uniform(-1.0, 1.0);
    }
  }
  [[nodiscard]] kernels::AxArgs args() {
    kernels::AxArgs a;
    a.u = u;
    a.w = w;
    a.g = std::span<const double>(gf.g.data(), gf.g.size());
    a.dx = std::span<const double>(ref.deriv().d.data(), ref.deriv().d.size());
    a.dxt = std::span<const double>(ref.deriv().dt.data(), ref.deriv().dt.size());
    a.n1d = ref.n1d();
    a.n_elements = gf.n_elements;
    return a;
  }
  sem::ReferenceElement ref;
  std::unique_ptr<sem::Mesh> mesh;
  sem::GeomFactors gf;
  std::vector<double> u, w;
};

class AcceleratorFunctional : public ::testing::TestWithParam<int> {};

TEST_P(AcceleratorFunctional, MatchesCpuReferenceExactly) {
  const int degree = GetParam();
  Operands cpu(degree);
  Operands sim(degree);
  kernels::ax_reference(cpu.args());
  const SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(degree));
  acc.run(sim.args());
  for (std::size_t p = 0; p < cpu.w.size(); ++p) {
    ASSERT_DOUBLE_EQ(cpu.w[p], sim.w[p]) << "dof " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, AcceleratorFunctional,
                         ::testing::Values(1, 2, 3, 5, 7, 9));

TEST(Accelerator, EveryLadderStageIsFunctionallyIdentical) {
  const int degree = 5;
  Operands expected(degree);
  kernels::ax_reference(expected.args());
  for (const KernelConfig& cfg :
       {KernelConfig::baseline(degree), KernelConfig::locality(degree),
        KernelConfig::ii1(degree), KernelConfig::banked(degree)}) {
    Operands sim(degree);
    const SemAccelerator acc(stratix10_gx2800(), cfg);
    acc.run(sim.args());
    for (std::size_t p = 0; p < expected.w.size(); ++p) {
      ASSERT_DOUBLE_EQ(expected.w[p], sim.w[p]);
    }
  }
}

TEST(Accelerator, PaddingPreservesResults) {
  // Section III-E host padding: block-extended operators give bitwise-equal
  // results on the original nodes.
  const int degree = 5;  // n1d = 6 -> pad 2 to reach 8
  Operands expected(degree);
  kernels::ax_reference(expected.args());

  KernelConfig padded = KernelConfig::banked(degree);
  padded.pad = 2;
  Operands sim(degree);
  const SemAccelerator acc(stratix10_gx2800(), padded);
  acc.run(sim.args());
  for (std::size_t p = 0; p < expected.w.size(); ++p) {
    ASSERT_DOUBLE_EQ(expected.w[p], sim.w[p]) << "dof " << p;
  }
}

TEST(Accelerator, EstimateScalesWithElements) {
  const SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(7));
  const RunStats small = acc.estimate(64);
  const RunStats big = acc.estimate(8192);
  EXPECT_LT(small.seconds, big.seconds);
  // Larger problems amortise the invocation overhead: higher GFLOP/s.
  EXPECT_LT(small.gflops, big.gflops);
  // Steady-state rate bounds the achieved rate.
  EXPECT_LE(big.dofs_per_cycle, acc.steady_dofs_per_cycle() + 1e-12);
}

TEST(Accelerator, EnergyAndPowerAreConsistent) {
  const SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(7));
  const RunStats s = acc.estimate(4096);
  EXPECT_NEAR(s.energy_j, s.power_w * s.seconds, 1e-12);
  EXPECT_NEAR(s.gflops_per_w, s.gflops / s.power_w, 1e-12);
  EXPECT_GT(s.power_w, 60.0);
  EXPECT_LT(s.power_w, 120.0);
}

TEST(Accelerator, MeasuredCalibrationTogglesCleanly) {
  SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(7));
  EXPECT_TRUE(acc.measured_calibration_active());
  EXPECT_DOUBLE_EQ(acc.clock_mhz(), 274.0);  // Table I fmax
  acc.set_use_measured_calibration(false);
  EXPECT_FALSE(acc.measured_calibration_active());
  EXPECT_NE(acc.clock_mhz(), 274.0);
}

TEST(Accelerator, NonPaperDegreesUseTheModel) {
  // Degree 8 was never synthesized in the paper; no fixture applies.
  const SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(8));
  EXPECT_FALSE(acc.measured_calibration_active());
  EXPECT_GT(acc.estimate(1024).gflops, 0.0);
}

TEST(Accelerator, OtherDevicesNeverUseTheGx2800Fixture) {
  const SemAccelerator acc(agilex_027(), KernelConfig::banked(7));
  EXPECT_FALSE(acc.measured_calibration_active());
}

TEST(Accelerator, BandwidthNeverExceedsBoardPeak) {
  for (int degree : {3, 7, 11, 15}) {
    const SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(degree));
    const RunStats s = acc.estimate(4096);
    EXPECT_LE(s.effective_bandwidth_gbs, 76.8 + 1e-9) << "N=" << degree;
  }
}

TEST(Accelerator, BaselineIsOrdersOfMagnitudeSlower) {
  const SemAccelerator baseline(stratix10_gx2800(), KernelConfig::baseline(7));
  const SemAccelerator banked(stratix10_gx2800(), KernelConfig::banked(7));
  const double ratio =
      banked.estimate(4096).gflops / baseline.estimate(4096).gflops;
  // Paper: the full ladder is worth ~4400x (0.025 -> 109 GFLOP/s).
  EXPECT_GT(ratio, 1000.0);
  EXPECT_LT(ratio, 20000.0);
}

TEST(Accelerator, RejectsMismatchedOperands) {
  Operands ops(3);
  const SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(5));
  EXPECT_THROW(acc.run(ops.args()), std::invalid_argument);
  const SemAccelerator ok(stratix10_gx2800(), KernelConfig::banked(3));
  EXPECT_THROW((void)ok.estimate(0), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::fpga
