/// Section III reproduction: the optimization ladder at N = 7.
///
/// baseline 0.025 -> ILP+locality ~10 -> II=1 ~60 -> banked 109 GFLOP/s.
/// Endpoint stages must match closely; the middle rungs within a factor
/// that covers the paper's loosely-specified intermediate configurations.

#include <gtest/gtest.h>

#include "fpga/accelerator.hpp"

namespace semfpga::fpga {
namespace {

double ladder_gflops(const KernelConfig& cfg) {
  const SemAccelerator acc(stratix10_gx2800(), cfg);
  return acc.estimate(4096).gflops;
}

TEST(OptLadder, BaselineMatchesPaperClosely) {
  // Paper: 0.025 GFLOP/s.
  const double g = ladder_gflops(KernelConfig::baseline(7));
  EXPECT_NEAR(g, 0.025, 0.01);
}

TEST(OptLadder, BaselineBandwidthMatchesPaper) {
  // Paper: the baseline "consumed 0.014 GB/s of external memory bandwidth".
  const SemAccelerator acc(stratix10_gx2800(), KernelConfig::baseline(7));
  const RunStats s = acc.estimate(4096);
  EXPECT_NEAR(s.effective_bandwidth_gbs, 0.014, 0.008);
}

TEST(OptLadder, LocalityStageNearTenGflops) {
  const double g = ladder_gflops(KernelConfig::locality(7));
  EXPECT_GT(g, 5.0);
  EXPECT_LT(g, 20.0);
}

TEST(OptLadder, IiOneStageNearSixtyGflops) {
  const double g = ladder_gflops(KernelConfig::ii1(7));
  EXPECT_GT(g, 45.0);
  EXPECT_LT(g, 80.0);
}

TEST(OptLadder, BankedStageMatches109) {
  const double g = ladder_gflops(KernelConfig::banked(7));
  EXPECT_NEAR(g, 109.0, 0.05 * 109.0);
}

TEST(OptLadder, EveryStageImproves) {
  const double g0 = ladder_gflops(KernelConfig::baseline(7));
  const double g1 = ladder_gflops(KernelConfig::locality(7));
  const double g2 = ladder_gflops(KernelConfig::ii1(7));
  const double g3 = ladder_gflops(KernelConfig::banked(7));
  EXPECT_LT(g0, g1);
  EXPECT_LT(g1, g2);
  EXPECT_LT(g2, g3);
}

TEST(OptLadder, LocalityJumpIsHundredsOfX) {
  // Paper: "we improve the performance over the baseline by 400x".
  const double ratio =
      ladder_gflops(KernelConfig::locality(7)) / ladder_gflops(KernelConfig::baseline(7));
  EXPECT_GT(ratio, 150.0);
  EXPECT_LT(ratio, 1000.0);
}

TEST(OptLadder, LadderHoldsAtOtherDegrees) {
  for (int degree : {3, 11}) {
    const double g0 = ladder_gflops(KernelConfig::baseline(degree));
    const double g3 = ladder_gflops(KernelConfig::banked(degree));
    EXPECT_GT(g3, 100.0 * g0) << "N=" << degree;
  }
}

}  // namespace
}  // namespace semfpga::fpga
