#include "fpga/synthesis.hpp"

#include <gtest/gtest.h>

#include "fpga/paper_data.hpp"

namespace semfpga::fpga {
namespace {

TEST(Synthesis, BankedKernelsFitForAllPaperDegrees) {
  const DeviceSpec gx = stratix10_gx2800();
  for (int degree : {1, 3, 5, 7, 9, 11, 13, 15}) {
    const SynthesisReport r = synthesize(gx, KernelConfig::banked(degree));
    EXPECT_TRUE(r.fits) << "N=" << degree;
    EXPECT_EQ(r.ii, 1) << "N=" << degree;
    EXPECT_DOUBLE_EQ(r.arbitration_stall, 1.0) << "N=" << degree;
  }
}

TEST(Synthesis, AutoUnrollMatchesTable1Design) {
  const DeviceSpec gx = stratix10_gx2800();
  const int degrees[8] = {1, 3, 5, 7, 9, 11, 13, 15};
  const int expected[8] = {2, 4, 2, 4, 2, 4, 2, 4};
  for (int i = 0; i < 8; ++i) {
    const SynthesisReport r = synthesize(gx, KernelConfig::banked(degrees[i]));
    EXPECT_EQ(r.t_design, expected[i]) << "N=" << degrees[i];
  }
}

TEST(Synthesis, LogicUtilisationTracksTable1) {
  // The resource model should land within 20 points of the published
  // utilisation for every synthesized degree (OCR-reconstructed cells
  // included) — Table I scatter itself is that large.
  const DeviceSpec gx = stratix10_gx2800();
  for (const Table1Row& row : paper_table1()) {
    const SynthesisReport r = synthesize(gx, KernelConfig::banked(row.degree));
    EXPECT_NEAR(r.util_alms, row.logic_frac, 0.20) << "N=" << row.degree;
  }
}

TEST(Synthesis, BramUsageTracksTable1WithinFactorTwo) {
  const DeviceSpec gx = stratix10_gx2800();
  for (const Table1Row& row : paper_table1()) {
    const SynthesisReport r = synthesize(gx, KernelConfig::banked(row.degree));
    const double published = row.bram_frac * gx.total.brams;
    EXPECT_GT(r.used.brams, 0.5 * published) << "N=" << row.degree;
    EXPECT_LT(r.used.brams, 2.0 * published) << "N=" << row.degree;
  }
}

TEST(Synthesis, RegistersTrackTable1WithinThirtyPercent) {
  const DeviceSpec gx = stratix10_gx2800();
  for (const Table1Row& row : paper_table1()) {
    const SynthesisReport r = synthesize(gx, KernelConfig::banked(row.degree));
    EXPECT_NEAR(r.used.registers / row.registers, 1.0, 0.35) << "N=" << row.degree;
  }
}

TEST(Synthesis, ResourcesGrowMonotonicallyWithUnroll) {
  const DeviceSpec gx = stratix10_gx2800();
  double prev_alms = 0.0;
  for (int unroll : {1, 2, 4}) {
    KernelConfig cfg = KernelConfig::ii1(7);
    cfg.unroll = unroll;
    const SynthesisReport r = synthesize(gx, cfg);
    EXPECT_GT(r.used.alms, prev_alms);
    prev_alms = r.used.alms;
  }
}

TEST(Synthesis, ArbitrationFiresWhenUnrollDoesNotDivide) {
  const DeviceSpec gx = stratix10_gx2800();
  // N=9 -> n1d=10: unroll 4 does not divide, stall doubles.
  KernelConfig cfg = KernelConfig::ii1(9);
  cfg.unroll = 4;
  EXPECT_DOUBLE_EQ(synthesize(gx, cfg).arbitration_stall, 2.0);
  cfg.unroll = 2;
  EXPECT_DOUBLE_EQ(synthesize(gx, cfg).arbitration_stall, 1.0);
}

TEST(Synthesis, UnsplitGxyzArbitrates) {
  const DeviceSpec gx = stratix10_gx2800();
  KernelConfig cfg = KernelConfig::locality(7);
  cfg.split_gxyz = false;
  EXPECT_DOUBLE_EQ(synthesize(gx, cfg).arbitration_stall, 2.0);
}

TEST(Synthesis, BaselineIsUnpipelined) {
  const DeviceSpec gx = stratix10_gx2800();
  const SynthesisReport r = synthesize(gx, KernelConfig::baseline(7));
  EXPECT_FALSE(r.pipelined);
}

TEST(Synthesis, ForcedIiOneHalvesTheInterval) {
  const DeviceSpec gx = stratix10_gx2800();
  EXPECT_EQ(synthesize(gx, KernelConfig::locality(7)).ii, 2);
  EXPECT_EQ(synthesize(gx, KernelConfig::ii1(7)).ii, 1);
}

TEST(Synthesis, FmaxFallsWithUtilisation) {
  const DeviceSpec gx = stratix10_gx2800();
  const double f_low = fmax_model_mhz(gx, 0.3);
  const double f_high = fmax_model_mhz(gx, 0.8);
  EXPECT_GT(f_low, f_high);
  EXPECT_GE(f_high, 120.0);
  EXPECT_LE(f_low, gx.fmax_ceiling_mhz);
}

TEST(Synthesis, PaddedKernelCostsMore) {
  const DeviceSpec gx = stratix10_gx2800();
  KernelConfig padded = KernelConfig::banked(5);
  padded.pad = 2;
  const SynthesisReport plain = synthesize(gx, KernelConfig::banked(5));
  const SynthesisReport pad = synthesize(gx, padded);
  EXPECT_GT(pad.used.brams, plain.used.brams);
}

TEST(Synthesis, BramUsageWithoutCachingIsTiny) {
  EXPECT_LT(bram_usage(8, 1, false), 10.0);
  EXPECT_GT(bram_usage(8, 4, true), 100.0);
}

}  // namespace
}  // namespace semfpga::fpga
