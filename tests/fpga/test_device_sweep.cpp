/// Cross-device property sweep of the accelerator simulator, plus failure
/// injection: undersized devices must be rejected, not mis-modelled.

#include <gtest/gtest.h>

#include "fpga/accelerator.hpp"

namespace semfpga::fpga {
namespace {

struct DeviceCase {
  const char* label;
  DeviceSpec (*make)();
};

class DeviceSweep : public ::testing::TestWithParam<DeviceCase> {};

TEST_P(DeviceSweep, BankedKernelsFitAndRunAtPaperDegrees) {
  const DeviceSpec device = GetParam().make();
  for (int degree : {3, 7, 11, 15}) {
    const SemAccelerator acc(device, KernelConfig::banked(degree));
    EXPECT_TRUE(acc.report().fits) << device.name << " N=" << degree;
    const RunStats s = acc.estimate_steady(1024);
    EXPECT_GT(s.gflops, 0.0) << device.name << " N=" << degree;
    EXPECT_GT(s.power_w, 0.0) << device.name << " N=" << degree;
    EXPECT_LE(s.effective_bandwidth_gbs, device.memory.peak_gbs + 1e-9)
        << device.name << " N=" << degree;
  }
}

TEST_P(DeviceSweep, ThroughputNeverExceedsTheBandwidthBound) {
  const DeviceSpec device = GetParam().make();
  for (int degree : {3, 7, 11, 15}) {
    SemAccelerator acc(device, KernelConfig::banked(degree));
    acc.set_use_measured_calibration(false);
    const double peak_dof_rate =
        device.memory.peak_bytes_per_sec() / 64.0;
    EXPECT_LE(acc.estimate_steady(4096).dof_rate, peak_dof_rate * 1.0001)
        << device.name << " N=" << degree;
  }
}

TEST_P(DeviceSweep, BiggerProblemsAmortiseBetter) {
  const DeviceSpec device = GetParam().make();
  const SemAccelerator acc(device, KernelConfig::banked(7));
  EXPECT_LT(acc.estimate(128).gflops, acc.estimate(8192).gflops) << device.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperDevices, DeviceSweep,
    ::testing::Values(DeviceCase{"gx2800", &stratix10_gx2800},
                      DeviceCase{"agilex", &agilex_027},
                      DeviceCase{"s10m", &stratix10_10m},
                      DeviceCase{"s10m_enh", &stratix10_10m_enhanced},
                      DeviceCase{"ideal", &ideal_cfd_fpga}),
    [](const ::testing::TestParamInfo<DeviceCase>& tpi) {
      return tpi.param.label;
    });

TEST(DeviceFailure, UndersizedDeviceIsRejected) {
  DeviceSpec tiny = stratix10_gx2800();
  tiny.name = "tiny";
  tiny.total.alms = tiny.base.alms + 1000.0;  // no room for any FPU
  EXPECT_THROW(SemAccelerator(tiny, KernelConfig::banked(15)), std::invalid_argument);
}

TEST(DeviceFailure, BramStarvedDeviceIsRejected) {
  DeviceSpec starved = stratix10_gx2800();
  starved.name = "bram-starved";
  starved.total.brams = 600.0;  // below the shell + any element cache
  EXPECT_THROW(SemAccelerator(starved, KernelConfig::banked(15)),
               std::invalid_argument);
}

TEST(DeviceFailure, SynthesisReportsNonFitWithoutThrowing) {
  DeviceSpec tiny = stratix10_gx2800();
  tiny.total.alms = tiny.base.alms + 1000.0;
  const SynthesisReport report = synthesize(tiny, KernelConfig::banked(15));
  EXPECT_FALSE(report.fits);
}

TEST(DeviceFailure, BaselineStillFitsOnTheRealDevice) {
  // The paper's baseline consumed >50% of the device but synthesized fine.
  const SynthesisReport report =
      synthesize(stratix10_gx2800(), KernelConfig::baseline(7));
  EXPECT_TRUE(report.fits);
}

}  // namespace
}  // namespace semfpga::fpga
