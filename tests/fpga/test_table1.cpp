/// Table I reproduction: the simulator must land on the paper's measured
/// throughput, performance and power for all eight synthesized kernels.

#include <gtest/gtest.h>

#include "fpga/accelerator.hpp"
#include "kernels/ax.hpp"

namespace semfpga::fpga {
namespace {

class Table1Sweep : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Sweep, DofsPerCycleWithinFivePercent) {
  const Table1Row row = GetParam();
  const SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(row.degree));
  const RunStats s = acc.estimate_steady(4096);
  EXPECT_NEAR(s.dofs_per_cycle, row.dofs_per_cycle, 0.05 * row.dofs_per_cycle)
      << "N=" << row.degree;
}

TEST_P(Table1Sweep, GflopsWithinFivePercent) {
  const Table1Row row = GetParam();
  const SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(row.degree));
  const RunStats s = acc.estimate_steady(4096);
  EXPECT_NEAR(s.gflops, row.gflops, 0.05 * row.gflops) << "N=" << row.degree;
}

TEST_P(Table1Sweep, PowerWithinTwentyPercent) {
  const Table1Row row = GetParam();
  const SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(row.degree));
  const RunStats s = acc.estimate_steady(4096);
  EXPECT_NEAR(s.power_w, row.power_w, 0.20 * row.power_w) << "N=" << row.degree;
}

TEST_P(Table1Sweep, ModelErrorColumnReproduces) {
  // Model error = (T_design - T_measured) / T_design; with the measured
  // memory-efficiency fixture the simulator's throughput IS the measured
  // one, so the recomputed error matches the published column.
  const Table1Row row = GetParam();
  const SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(row.degree));
  const RunStats s = acc.estimate_steady(4096);
  const double t_design = acc.report().t_design;
  const double err_pct = (t_design - s.dofs_per_cycle) / t_design * 100.0;
  EXPECT_NEAR(err_pct, row.model_error_pct, 2.5) << "N=" << row.degree;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table1Sweep,
                         ::testing::ValuesIn(paper_table1()),
                         [](const ::testing::TestParamInfo<Table1Row>& tpi) {
                           std::string name = "N";
                           name += std::to_string(tpi.param.degree);
                           return name;
                         });

TEST(Table1, PublishedRowsSatisfyTheThroughputIdentity) {
  // Internal consistency of the published data itself:
  // GFLOP/s = (12(N+1)+15) * DOFs/cycle * fmax.
  for (const Table1Row& row : paper_table1()) {
    const double flops_per_dof =
        static_cast<double>(kernels::ax_flops_per_dof(row.degree + 1));
    const double derived = flops_per_dof * row.dofs_per_cycle * row.fmax_mhz * 1e6 / 1e9;
    EXPECT_NEAR(derived, row.gflops, 0.04 * row.gflops) << "N=" << row.degree;
  }
}

TEST(Table1, PublishedPowerEfficiencyIsConsistent) {
  // The N=3 row's published 0.78 GFLOP/s/W disagrees with 62.2/84.38 = 0.74
  // (another OCR casualty); the 0.05 tolerance covers it.
  for (const Table1Row& row : paper_table1()) {
    EXPECT_NEAR(row.gflops / row.power_w, row.gflops_per_w, 0.05)
        << "N=" << row.degree;
  }
}

TEST(Table1, MeasuredEfficiencyIsBelowPeakAndSensible) {
  for (const Table1Row& row : paper_table1()) {
    const double eff = measured_memory_efficiency(row.degree);
    EXPECT_GT(eff, 0.2) << "N=" << row.degree;
    EXPECT_LT(eff, 1.0) << "N=" << row.degree;
  }
}

TEST(Table1, PeaksAtTheDegreesThePaperHighlights) {
  // 109 / 136.4 / 211.3 GFLOP/s at N = 7 / 11 / 15 are the three best.
  auto gflops = [](int degree) {
    const SemAccelerator acc(stratix10_gx2800(), KernelConfig::banked(degree));
    return acc.estimate_steady(4096).gflops;
  };
  const double g7 = gflops(7), g11 = gflops(11), g15 = gflops(15);
  for (int degree : {1, 3, 5, 9, 13}) {
    EXPECT_LT(gflops(degree), g7) << "N=" << degree;
  }
  EXPECT_GT(g11, g7);
  EXPECT_GT(g15, g11);
}

}  // namespace
}  // namespace semfpga::fpga
