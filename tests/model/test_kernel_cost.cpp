#include "model/kernel_cost.hpp"

#include <gtest/gtest.h>

namespace semfpga::model {
namespace {

TEST(KernelCost, MatchesPaperCostMeasure) {
  // C(N) = (6(N+1)+6, 6(N+1)+9), Q(N) = (7, 1)  — paper Section IV.
  for (int degree : {1, 3, 5, 7, 9, 11, 13, 15}) {
    const KernelCost c = poisson_cost(degree);
    EXPECT_EQ(c.adds_per_dof, 6 * (degree + 1) + 6);
    EXPECT_EQ(c.mults_per_dof, 6 * (degree + 1) + 9);
    EXPECT_EQ(c.loads_per_dof, 7);
    EXPECT_EQ(c.writes_per_dof, 1);
    EXPECT_EQ(c.flops_per_dof(), 12 * (degree + 1) + 15);
    EXPECT_EQ(c.bytes_per_dof(), 64);
  }
}

TEST(KernelCost, IntensityMatchesPaperFormula) {
  // I(N) = (12(N+1)+15)/64.
  EXPECT_NEAR(poisson_cost(7).intensity(), 111.0 / 64.0, 1e-15);
  EXPECT_NEAR(poisson_cost(11).intensity(), 159.0 / 64.0, 1e-15);
  EXPECT_NEAR(poisson_cost(15).intensity(), 207.0 / 64.0, 1e-15);
}

TEST(KernelCost, IntensityGrowsWithDegree) {
  double prev = 0.0;
  for (int degree = 1; degree <= 20; ++degree) {
    const double i = poisson_cost(degree).intensity();
    EXPECT_GT(i, prev);
    prev = i;
  }
}

TEST(KernelCost, PointsPerElement) {
  EXPECT_EQ(poisson_cost(7).points_per_element(), 512);
  EXPECT_EQ(poisson_cost(15).points_per_element(), 4096);
}

TEST(KernelCost, HelmholtzAddsTheSeventhFactor) {
  const KernelCost p = poisson_cost(7);
  const KernelCost h = helmholtz_cost(7);
  EXPECT_EQ(h.loads_per_dof, p.loads_per_dof + 1);
  EXPECT_EQ(h.adds_per_dof, p.adds_per_dof + 1);
  EXPECT_EQ(h.mults_per_dof, p.mults_per_dof + 2);
  EXPECT_EQ(h.bytes_per_dof(), 72);
}

TEST(KernelCost, RejectsDegreeZero) {
  EXPECT_THROW((void)poisson_cost(0), std::invalid_argument);
  EXPECT_THROW((void)poisson_cost(-3), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::model
