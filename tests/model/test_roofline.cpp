#include "model/roofline.hpp"

#include <gtest/gtest.h>

#include "model/kernel_cost.hpp"

namespace semfpga::model {
namespace {

TEST(Roofline, MemoryBoundRegion) {
  // Below the ridge, performance is intensity * bandwidth.
  EXPECT_DOUBLE_EQ(roofline_flops(1.0, 1e12, 100e9), 100e9);
  EXPECT_TRUE(is_memory_bound(1.0, 1e12, 100e9));
}

TEST(Roofline, ComputeBoundRegion) {
  EXPECT_DOUBLE_EQ(roofline_flops(100.0, 1e12, 100e9), 1e12);
  EXPECT_FALSE(is_memory_bound(100.0, 1e12, 100e9));
}

TEST(Roofline, RidgePoint) {
  EXPECT_DOUBLE_EQ(ridge_intensity(1e12, 100e9), 10.0);
  const double at_ridge = roofline_flops(10.0, 1e12, 100e9);
  EXPECT_DOUBLE_EQ(at_ridge, 1e12);
}

TEST(Roofline, SemKernelIsMemoryBoundOnEveryPaperPlatform) {
  // I(N) <= 207/64 ~ 3.23 FLOP/byte; every Table II system needs > 4
  // FLOP/byte to leave the memory roof (e.g. A100: 9746/1555 = 6.3).
  struct P {
    double peak_gflops, bw_gbs;
  };
  const P platforms[] = {{1075, 128}, {921, 76.8}, {5304, 732.2},
                         {7066, 897}, {9746, 1555}, {1371, 240}};
  const double intensity = poisson_cost(15).intensity();
  for (const P& p : platforms) {
    EXPECT_TRUE(is_memory_bound(intensity, p.peak_gflops * 1e9, p.bw_gbs * 1e9));
  }
}

TEST(Roofline, Gx2800RooflineAtPaperDegrees) {
  // The FPGA roofline at 76.8 GB/s: I(N) * B.
  EXPECT_NEAR(roofline_flops(poisson_cost(7).intensity(), 500e9, 76.8e9) / 1e9,
              111.0 / 64.0 * 76.8, 1e-9);
  EXPECT_NEAR(roofline_flops(poisson_cost(15).intensity(), 500e9, 76.8e9) / 1e9,
              207.0 / 64.0 * 76.8, 1e-9);
}

TEST(Roofline, RejectsNegativeInputs) {
  EXPECT_THROW((void)roofline_flops(-1.0, 1e9, 1e9), std::invalid_argument);
  EXPECT_THROW((void)ridge_intensity(1e9, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::model
