#include "model/throughput.hpp"

#include <gtest/gtest.h>

#include "fpga/device.hpp"

namespace semfpga::model {
namespace {

DeviceEnvelope gx2800_env() { return fpga::stratix10_gx2800().envelope(300.0); }

TEST(Throughput, BandwidthBoundMatchesPaperTmax4) {
  // T_B = 76.8e9 / (64 * 300e6) = 4 DOFs/cycle: "our performance model
  // which for this FPGA gives Tmax = 4".
  const Throughput t = max_throughput(poisson_cost(7), gx2800_env(),
                                      UnrollPolicy::kInnerDim);
  EXPECT_NEAR(t.t_bandwidth, 4.0, 1e-12);
  EXPECT_EQ(t.t_design, 4);
  EXPECT_NEAR(t.t_effective, 4.0, 1e-12);
}

TEST(Throughput, DesignThroughputTable1Pattern) {
  // The paper's synthesized kernels use T = largest power of two dividing
  // N+1, capped by T_B = 4: N=1,5,9,13 -> 2; N=3,7,11,15 -> 4.
  const DeviceEnvelope env = gx2800_env();
  const int expected[8] = {2, 4, 2, 4, 2, 4, 2, 4};
  const int degrees[8] = {1, 3, 5, 7, 9, 11, 13, 15};
  for (int i = 0; i < 8; ++i) {
    const Throughput t =
        max_throughput(poisson_cost(degrees[i]), env, UnrollPolicy::kInnerDim);
    EXPECT_EQ(t.t_design, expected[i]) << "N=" << degrees[i];
  }
}

TEST(Throughput, Gx2800IsBandwidthLimitedNotResourceLimited) {
  // Table I shows the GX2800 fits all eight kernels; the envelope must
  // allow more lanes than the memory feeds for every degree.
  const DeviceEnvelope env = gx2800_env();
  for (int degree : {1, 3, 5, 7, 9, 11, 13, 15}) {
    const Throughput t =
        max_throughput(poisson_cost(degree), env, UnrollPolicy::kInnerDim);
    EXPECT_GT(t.t_resource, t.t_bandwidth) << "N=" << degree;
  }
}

TEST(Throughput, PeakFlopsIdentity) {
  // P_max = (12(N+1)+15) * T * f.
  const DeviceEnvelope env = gx2800_env();
  const KernelCost cost = poisson_cost(7);
  const Throughput t = max_throughput(cost, env, UnrollPolicy::kInnerDim);
  EXPECT_NEAR(peak_flops(cost, t, 300e6), 111.0 * 4.0 * 300e6, 1.0);
}

TEST(FeasibleUnroll, InnerDimRequiresDivisibility) {
  // n1d = 6: powers of two dividing 6 are {1, 2}.
  EXPECT_EQ(feasible_unroll(6, 64.0, UnrollPolicy::kInnerDim), 2);
  // n1d = 8: 1,2,4,8.
  EXPECT_EQ(feasible_unroll(8, 64.0, UnrollPolicy::kInnerDim), 8);
  EXPECT_EQ(feasible_unroll(8, 7.9, UnrollPolicy::kInnerDim), 4);
  // n1d = 10: {1, 2}.
  EXPECT_EQ(feasible_unroll(10, 100.0, UnrollPolicy::kInnerDim), 2);
}

TEST(FeasibleUnroll, MultiDimUsesTheCubeVolume) {
  // n1d = 12: (N+1)^3 = 1728 = 2^6 * 27 -> up to 64 lanes.
  EXPECT_EQ(feasible_unroll(12, 1000.0, UnrollPolicy::kMultiDim), 64);
  EXPECT_EQ(feasible_unroll(12, 63.0, UnrollPolicy::kMultiDim), 32);
  // n1d = 8: 512 = 2^9 -> up to 512.
  EXPECT_EQ(feasible_unroll(8, 100.0, UnrollPolicy::kMultiDim), 64);
  // n1d = 10: 1000 = 2^3 * 125 -> up to 8.
  EXPECT_EQ(feasible_unroll(10, 100.0, UnrollPolicy::kMultiDim), 8);
}

TEST(FeasibleUnroll, AlwaysAtLeastOne) {
  EXPECT_EQ(feasible_unroll(7, 0.2, UnrollPolicy::kInnerDim), 1);
  EXPECT_EQ(feasible_unroll(7, 100.0, UnrollPolicy::kInnerDim), 1);  // odd n1d
}

TEST(Throughput, DesignIsQuantisedBelowTheBandwidthBound) {
  // T_B = 2.083: the design quantises down to 2 lanes and runs at 2, not
  // at the fractional memory bound.
  DeviceEnvelope env = gx2800_env();
  env.bandwidth_bytes = 40e9;  // T_B = 2.083
  const Throughput t = max_throughput(poisson_cost(7), env, UnrollPolicy::kInnerDim);
  EXPECT_NEAR(t.t_bandwidth, 2.0833333, 1e-6);
  EXPECT_EQ(t.t_design, 2);
  EXPECT_NEAR(t.t_effective, 2.0, 1e-12);
  EXPECT_LE(t.t_effective, t.t_bandwidth + 1e-12);
}

TEST(Throughput, ResourceBoundScalesWithDegree) {
  // Higher N costs more per lane, so the resource-bound T shrinks.
  const DeviceEnvelope env = gx2800_env();
  double prev = 1e30;
  for (int degree : {3, 7, 11, 15}) {
    const Throughput t =
        max_throughput(poisson_cost(degree), env, UnrollPolicy::kInnerDim);
    EXPECT_LT(t.t_alm, prev);
    prev = t.t_alm;
  }
}

TEST(Throughput, HardenedFp64RemovesTheLogicWall) {
  DeviceEnvelope soft = gx2800_env();
  DeviceEnvelope hard = soft;
  hard.op_cost = hardened_fp64_cost();
  const KernelCost cost = poisson_cost(15);
  const Throughput ts = max_throughput(cost, soft, UnrollPolicy::kMultiDim);
  const Throughput th = max_throughput(cost, hard, UnrollPolicy::kMultiDim);
  EXPECT_GT(th.t_alm, 5.0 * ts.t_alm);
}

TEST(Throughput, RejectsNonPositiveClockOrBandwidth) {
  DeviceEnvelope env = gx2800_env();
  env.clock_hz = 0.0;
  EXPECT_THROW((void)max_throughput(poisson_cost(7), env, UnrollPolicy::kInnerDim),
               std::invalid_argument);
  env = gx2800_env();
  env.bandwidth_bytes = 0.0;
  EXPECT_THROW((void)max_throughput(poisson_cost(7), env, UnrollPolicy::kInnerDim),
               std::invalid_argument);
}

TEST(Throughput, LimiterNamesAreStable) {
  EXPECT_STREQ(limiter_name(Limiter::kBandwidth), "bandwidth");
  EXPECT_STREQ(limiter_name(Limiter::kLogic), "logic");
  EXPECT_STREQ(limiter_name(Limiter::kDsp), "dsp");
  EXPECT_STREQ(limiter_name(Limiter::kBram), "bram");
  EXPECT_STREQ(limiter_name(Limiter::kUnroll), "unroll");
}

}  // namespace
}  // namespace semfpga::model
