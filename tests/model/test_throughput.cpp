#include "model/throughput.hpp"

#include <gtest/gtest.h>

#include "fpga/device.hpp"

namespace semfpga::model {
namespace {

DeviceEnvelope gx2800_env() { return fpga::stratix10_gx2800().envelope(300.0); }

TEST(Throughput, BandwidthBoundMatchesPaperTmax4) {
  // T_B = 76.8e9 / (64 * 300e6) = 4 DOFs/cycle: "our performance model
  // which for this FPGA gives Tmax = 4".
  const Throughput t = max_throughput(poisson_cost(7), gx2800_env(),
                                      UnrollPolicy::kInnerDim);
  EXPECT_NEAR(t.t_bandwidth, 4.0, 1e-12);
  EXPECT_EQ(t.t_design, 4);
  EXPECT_NEAR(t.t_effective, 4.0, 1e-12);
}

TEST(Throughput, DesignThroughputTable1Pattern) {
  // The paper's synthesized kernels use T = largest power of two dividing
  // N+1, capped by T_B = 4: N=1,5,9,13 -> 2; N=3,7,11,15 -> 4.
  const DeviceEnvelope env = gx2800_env();
  const int expected[8] = {2, 4, 2, 4, 2, 4, 2, 4};
  const int degrees[8] = {1, 3, 5, 7, 9, 11, 13, 15};
  for (int i = 0; i < 8; ++i) {
    const Throughput t =
        max_throughput(poisson_cost(degrees[i]), env, UnrollPolicy::kInnerDim);
    EXPECT_EQ(t.t_design, expected[i]) << "N=" << degrees[i];
  }
}

TEST(Throughput, Gx2800IsBandwidthLimitedNotResourceLimited) {
  // Table I shows the GX2800 fits all eight kernels; the envelope must
  // allow more lanes than the memory feeds for every degree.
  const DeviceEnvelope env = gx2800_env();
  for (int degree : {1, 3, 5, 7, 9, 11, 13, 15}) {
    const Throughput t =
        max_throughput(poisson_cost(degree), env, UnrollPolicy::kInnerDim);
    EXPECT_GT(t.t_resource, t.t_bandwidth) << "N=" << degree;
  }
}

TEST(Throughput, PeakFlopsIdentity) {
  // P_max = (12(N+1)+15) * T * f.
  const DeviceEnvelope env = gx2800_env();
  const KernelCost cost = poisson_cost(7);
  const Throughput t = max_throughput(cost, env, UnrollPolicy::kInnerDim);
  EXPECT_NEAR(peak_flops(cost, t, 300e6), 111.0 * 4.0 * 300e6, 1.0);
}

TEST(FeasibleUnroll, InnerDimRequiresDivisibility) {
  // n1d = 6: powers of two dividing 6 are {1, 2}.
  EXPECT_EQ(feasible_unroll(6, 64.0, UnrollPolicy::kInnerDim), 2);
  // n1d = 8: 1,2,4,8.
  EXPECT_EQ(feasible_unroll(8, 64.0, UnrollPolicy::kInnerDim), 8);
  EXPECT_EQ(feasible_unroll(8, 7.9, UnrollPolicy::kInnerDim), 4);
  // n1d = 10: {1, 2}.
  EXPECT_EQ(feasible_unroll(10, 100.0, UnrollPolicy::kInnerDim), 2);
}

TEST(FeasibleUnroll, MultiDimUsesTheCubeVolume) {
  // n1d = 12: (N+1)^3 = 1728 = 2^6 * 27 -> up to 64 lanes.
  EXPECT_EQ(feasible_unroll(12, 1000.0, UnrollPolicy::kMultiDim), 64);
  EXPECT_EQ(feasible_unroll(12, 63.0, UnrollPolicy::kMultiDim), 32);
  // n1d = 8: 512 = 2^9 -> up to 512.
  EXPECT_EQ(feasible_unroll(8, 100.0, UnrollPolicy::kMultiDim), 64);
  // n1d = 10: 1000 = 2^3 * 125 -> up to 8.
  EXPECT_EQ(feasible_unroll(10, 100.0, UnrollPolicy::kMultiDim), 8);
}

TEST(FeasibleUnroll, AlwaysAtLeastOne) {
  EXPECT_EQ(feasible_unroll(7, 0.2, UnrollPolicy::kInnerDim), 1);
  EXPECT_EQ(feasible_unroll(7, 100.0, UnrollPolicy::kInnerDim), 1);  // odd n1d
}

TEST(Throughput, DesignIsQuantisedBelowTheBandwidthBound) {
  // T_B = 2.083: the design quantises down to 2 lanes and runs at 2, not
  // at the fractional memory bound.
  DeviceEnvelope env = gx2800_env();
  env.bandwidth_bytes = 40e9;  // T_B = 2.083
  const Throughput t = max_throughput(poisson_cost(7), env, UnrollPolicy::kInnerDim);
  EXPECT_NEAR(t.t_bandwidth, 2.0833333, 1e-6);
  EXPECT_EQ(t.t_design, 2);
  EXPECT_NEAR(t.t_effective, 2.0, 1e-12);
  EXPECT_LE(t.t_effective, t.t_bandwidth + 1e-12);
}

TEST(Throughput, ResourceBoundScalesWithDegree) {
  // Higher N costs more per lane, so the resource-bound T shrinks.
  const DeviceEnvelope env = gx2800_env();
  double prev = 1e30;
  for (int degree : {3, 7, 11, 15}) {
    const Throughput t =
        max_throughput(poisson_cost(degree), env, UnrollPolicy::kInnerDim);
    EXPECT_LT(t.t_alm, prev);
    prev = t.t_alm;
  }
}

TEST(Throughput, HardenedFp64RemovesTheLogicWall) {
  DeviceEnvelope soft = gx2800_env();
  DeviceEnvelope hard = soft;
  hard.op_cost = hardened_fp64_cost();
  const KernelCost cost = poisson_cost(15);
  const Throughput ts = max_throughput(cost, soft, UnrollPolicy::kMultiDim);
  const Throughput th = max_throughput(cost, hard, UnrollPolicy::kMultiDim);
  EXPECT_GT(th.t_alm, 5.0 * ts.t_alm);
}

TEST(Throughput, RejectsNonPositiveClockOrBandwidth) {
  DeviceEnvelope env = gx2800_env();
  env.clock_hz = 0.0;
  EXPECT_THROW((void)max_throughput(poisson_cost(7), env, UnrollPolicy::kInnerDim),
               std::invalid_argument);
  env = gx2800_env();
  env.bandwidth_bytes = 0.0;
  EXPECT_THROW((void)max_throughput(poisson_cost(7), env, UnrollPolicy::kInnerDim),
               std::invalid_argument);
}

/// Synthetic device where the per-lane resource costs and totals are chosen
/// directly, so each resource bound can be pinned wherever a test needs it.
/// Per-lane cost: alms 111, registers 111*reg_cost, dsps 111*dsp_cost,
/// brams = bram_per_lane (poisson_cost(7): 54 adds + 57 mults per DOF).
DeviceEnvelope synthetic_env(double alms, double regs, double dsps, double brams,
                             double reg_cost, double dsp_cost, double bram_per_lane,
                             double bandwidth = 1e15) {
  DeviceEnvelope env;
  env.name = "synthetic";
  env.total = {alms, regs, dsps, brams};
  env.base = {};
  env.op_cost.add = {1.0, reg_cost, dsp_cost, 0.0};
  env.op_cost.mult = {1.0, reg_cost, dsp_cost, 0.0};
  env.op_cost.name = "synthetic";
  env.bram_per_lane = bram_per_lane;
  env.bandwidth_bytes = bandwidth;  // huge: resources decide by default
  env.clock_hz = 300e6;
  return env;
}

TEST(Throughput, RegisterArgminIsNotMisreportedAsLogic) {
  // t_alm = 600/111 = 5.41, t_reg = 900/222 = 4.05: both below next = 8,
  // registers are the argmin.  The old first-below-`next` cascade called
  // this logic-limited.
  const DeviceEnvelope env = synthetic_env(600, 900, 0, 0, 2.0, 0.0, 0.0);
  const Throughput t = max_throughput(poisson_cost(7), env, UnrollPolicy::kInnerDim);
  ASSERT_EQ(t.t_design, 4);
  EXPECT_LT(t.t_alm, 2.0 * t.t_design);  // ALM bound also below next...
  EXPECT_LT(t.t_reg, t.t_alm);           // ...but registers are tighter
  EXPECT_EQ(t.limiter, Limiter::kRegisters);
}

TEST(Throughput, LimiterIsTheArgminOfTheResourceBounds) {
  const KernelCost cost = poisson_cost(7);
  struct Case {
    DeviceEnvelope env;
    Limiter want;
  };
  const Case cases[] = {
      // alms tightest: t_alm = 4.5, t_reg = 6.3, others unconstrained.
      {synthetic_env(500, 700, 0, 0, 1.0, 0.0, 0.0), Limiter::kLogic},
      // dsps tightest: t_dsp = 450/111 = 4.05 < t_alm = 5.4.
      {synthetic_env(600, 0, 450, 0, 0.0, 1.0, 0.0), Limiter::kDsp},
      // brams tightest: t_bram = 65/16 = 4.06 < t_alm = 5.4.
      {synthetic_env(600, 0, 0, 65, 0.0, 0.0, 16.0), Limiter::kBram},
  };
  for (const Case& c : cases) {
    const Throughput t = max_throughput(cost, c.env, UnrollPolicy::kInnerDim);
    ASSERT_EQ(t.t_design, 4);
    EXPECT_EQ(t.limiter, c.want) << limiter_name(t.limiter);
  }
}

TEST(Throughput, BandwidthBelowResourcesAttributesBandwidth) {
  // Resources allow ~5.4 lanes but the memory feeds only 5: with both under
  // next = 8, bandwidth is the argmin and must win the attribution.
  // T_B = 5 needs B = 5 * 64 * 300e6.
  const DeviceEnvelope env =
      synthetic_env(600, 0, 0, 0, 0.0, 0.0, 0.0, 5.0 * 64.0 * 300e6);
  const Throughput t = max_throughput(poisson_cost(7), env, UnrollPolicy::kInnerDim);
  ASSERT_EQ(t.t_design, 4);
  EXPECT_LT(t.t_bandwidth, t.t_resource);
  EXPECT_EQ(t.limiter, Limiter::kBandwidth);
}

TEST(Throughput, LimiterNamesAreStable) {
  EXPECT_STREQ(limiter_name(Limiter::kBandwidth), "bandwidth");
  EXPECT_STREQ(limiter_name(Limiter::kLogic), "logic");
  EXPECT_STREQ(limiter_name(Limiter::kDsp), "dsp");
  EXPECT_STREQ(limiter_name(Limiter::kBram), "bram");
  EXPECT_STREQ(limiter_name(Limiter::kUnroll), "unroll");
}

}  // namespace
}  // namespace semfpga::model
