/// Section V-D reproduction: the paper's future-device projections.
///
/// Every assertion here compares our model output against a number the
/// paper states.  Tolerances are tight (2-5%) where our calibration matches
/// the paper and the one known discrepancy (enhanced 10M at N=11, see
/// EXPERIMENTS.md) is pinned at our model's value so regressions surface.

#include <gtest/gtest.h>

#include "fpga/device.hpp"
#include "model/throughput.hpp"

namespace semfpga::model {
namespace {

double projected_gflops(const fpga::DeviceSpec& device, int degree) {
  const KernelCost cost = poisson_cost(degree);
  const DeviceEnvelope env = device.envelope(300.0);
  const Throughput t = max_throughput(cost, env, UnrollPolicy::kMultiDim);
  return peak_flops(cost, t, env.clock_hz) / 1e9;
}

TEST(Projections, Agilex027MatchesPaper) {
  // Paper: "estimated peak performance for Intel Agilex 027 running our
  // SEM-accelerator is 266, 191 and 248 GFLOP/s, and the device is
  // logic-bound."
  const fpga::DeviceSpec agilex = fpga::agilex_027();
  EXPECT_NEAR(projected_gflops(agilex, 7), 266.0, 0.02 * 266.0);
  EXPECT_NEAR(projected_gflops(agilex, 11), 191.0, 0.02 * 191.0);
  EXPECT_NEAR(projected_gflops(agilex, 15), 248.0, 0.02 * 248.0);
}

TEST(Projections, AgilexN11DipIsTheUnrollConstraint) {
  // "Even if the device can support a throughput of, say 6, this is
  // reduced down to 4, leading to lower performance for N = 11."
  const DeviceEnvelope env = fpga::agilex_027().envelope(300.0);
  const Throughput t = max_throughput(poisson_cost(11), env, UnrollPolicy::kMultiDim);
  EXPECT_GE(t.t_resource, 5.5);
  EXPECT_LT(t.t_resource, 8.0);
  EXPECT_EQ(t.t_design, 4);
}

TEST(Projections, AgilexIsLogicBound) {
  const DeviceEnvelope env = fpga::agilex_027().envelope(300.0);
  for (int degree : {11, 15}) {
    const Throughput t =
        max_throughput(poisson_cost(degree), env, UnrollPolicy::kMultiDim);
    EXPECT_LT(t.t_alm, t.t_dsp) << "N=" << degree;
    EXPECT_LT(t.t_alm, t.t_bandwidth) << "N=" << degree;
  }
}

TEST(Projections, Stratix10MPeaksAt382AtN11) {
  // "The Stratix 10M ... is projected to reach only slightly higher
  // performance than the Agilex, peaking at 382 GFlops/s at N = 11."
  const fpga::DeviceSpec m10 = fpga::stratix10_10m();
  EXPECT_NEAR(projected_gflops(m10, 11), 382.0, 0.02 * 382.0);
  EXPECT_NEAR(projected_gflops(m10, 7), 266.0, 0.02 * 266.0);
  // Known model divergence: at N=15 our envelope still admits T=8, giving
  // ~497 GFLOP/s where the paper's text implies less than 382.  Pinned so
  // any calibration change is visible (EXPERIMENTS.md discusses this).
  EXPECT_NEAR(projected_gflops(m10, 15), 497.0, 0.03 * 497.0);
}

TEST(Projections, Enhanced10MReachesPaperTargetsAtN7AndN15) {
  // "with 8.7k DSPs ... and increase the external bandwidth to 600 GB/s,
  // then the modeled performance would be up to 1.06, 1.53, and 0.99
  // TFLOP/s" — our calibration reproduces N=7 and N=15 exactly; at N=11
  // our resource model binds at T=16 (0.76 TF), a documented discrepancy.
  const fpga::DeviceSpec enhanced = fpga::stratix10_10m_enhanced();
  EXPECT_NEAR(projected_gflops(enhanced, 7), 1060.0, 0.02 * 1060.0);
  EXPECT_NEAR(projected_gflops(enhanced, 15), 990.0, 0.02 * 990.0);
  EXPECT_NEAR(projected_gflops(enhanced, 11), 763.0, 0.03 * 763.0);
}

TEST(Projections, IdealFpgaBeatsTheA100Numbers) {
  // "a theoretical peak performance of 2.1, 3, 3.97 TFLOP/s, rivaling the
  // roofline for the A100 based on its 1555 GB/s bandwidth."
  const fpga::DeviceSpec ideal = fpga::ideal_cfd_fpga();
  EXPECT_NEAR(projected_gflops(ideal, 7), 2130.0, 0.03 * 2130.0);
  EXPECT_NEAR(projected_gflops(ideal, 11), 3050.0, 0.03 * 3050.0);
  EXPECT_NEAR(projected_gflops(ideal, 15), 3970.0, 0.03 * 3970.0);
}

TEST(Projections, IdealFpgaIsMemoryBound) {
  // "The final performance for such hypothetical FPGA would, exactly like
  // the A100, be memory bound."
  const DeviceEnvelope env = fpga::ideal_cfd_fpga().envelope(300.0);
  for (int degree : {7, 11, 15}) {
    const Throughput t =
        max_throughput(poisson_cost(degree), env, UnrollPolicy::kMultiDim);
    EXPECT_EQ(t.t_design, 64) << "N=" << degree;
    EXPECT_LT(t.t_bandwidth, t.t_resource) << "N=" << degree;
  }
}

TEST(Projections, IdealFpgaBramBudgetIsSufficient) {
  // The paper sizes the ideal device with only 10% more BRAM than the
  // GX2800 — BRAM must not be the limiter at T=64.
  const DeviceEnvelope env = fpga::ideal_cfd_fpga().envelope(300.0);
  const Throughput t = max_throughput(poisson_cost(15), env, UnrollPolicy::kMultiDim);
  EXPECT_GT(t.t_bram, 64.0);
}

TEST(Projections, OrderingAcrossDevicesIsMonotone) {
  // Each projected device dominates its predecessor at every anchor degree
  // (Agilex <= 10M <= enhanced 10M <= ideal).
  for (int degree : {7, 11, 15}) {
    const double agilex = projected_gflops(fpga::agilex_027(), degree);
    const double m10 = projected_gflops(fpga::stratix10_10m(), degree);
    const double enh = projected_gflops(fpga::stratix10_10m_enhanced(), degree);
    const double ideal = projected_gflops(fpga::ideal_cfd_fpga(), degree);
    EXPECT_LE(agilex, m10 * 1.0001) << "N=" << degree;
    EXPECT_LE(m10, enh * 1.0001) << "N=" << degree;
    EXPECT_LE(enh, ideal * 1.0001) << "N=" << degree;
  }
}

}  // namespace
}  // namespace semfpga::model
