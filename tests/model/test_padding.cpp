#include "model/padding.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "fpga/device.hpp"

namespace semfpga::model {
namespace {

DeviceEnvelope env() { return fpga::stratix10_gx2800().envelope(300.0); }

TEST(Padding, OverheadIsTheCubeOfTheSizeRatio) {
  // p = ((N+1+pad)/(N+1))^3 — paper Section IV.
  const PaddingOption opt = evaluate_padding(5, 2, env(), UnrollPolicy::kInnerDim);
  EXPECT_NEAR(opt.compute_overhead, std::pow(8.0 / 6.0, 3), 1e-12);
  EXPECT_EQ(opt.padded_n1d, 8);
}

TEST(Padding, ZeroPaddingIsIdentity) {
  const PaddingOption opt = evaluate_padding(7, 0, env(), UnrollPolicy::kInnerDim);
  EXPECT_DOUBLE_EQ(opt.compute_overhead, 1.0);
  EXPECT_DOUBLE_EQ(opt.speedup, 1.0);
  EXPECT_EQ(opt.t_unpadded, opt.t_padded);
}

TEST(Padding, SmallDegreesLoseFromPadding) {
  // "for most degrees, in particular small ones, padding would simply
  // decrease the performance" (Section IV): padding N=1 to N=3 grows the
  // work 8x for at most 2x the unroll.
  const PaddingOption opt = evaluate_padding(1, 2, env(), UnrollPolicy::kInnerDim);
  EXPECT_LT(opt.speedup, 1.0);
}

TEST(Padding, EvenGllCountsGainLittleOnTheGx2800) {
  // The paper focuses on even N+1; for those the bandwidth bound (T_B = 4)
  // caps any padded gain to at most marginal.
  for (int degree : {3, 7, 11, 15}) {
    const PaddingOption best = best_padding(degree, 4, env(), UnrollPolicy::kInnerDim);
    EXPECT_LE(best.speedup, 1.05) << "N=" << degree;
  }
}

TEST(Padding, OddGllCountBenefitsWhenBandwidthAllows) {
  // On a bandwidth-rich device, padding 6 points (T<=2) to 8 points (T<=8)
  // wins despite the (8/6)^3 overhead: 4x lanes vs 2.37x work.
  DeviceEnvelope rich = env();
  rich.bandwidth_bytes = 1e12;
  const PaddingOption opt = evaluate_padding(5, 2, rich, UnrollPolicy::kInnerDim);
  EXPECT_GT(opt.t_padded, opt.t_unpadded);
  EXPECT_GT(opt.speedup, 1.0);
}

TEST(Padding, BestPaddingSearchesTheRange) {
  DeviceEnvelope rich = env();
  rich.bandwidth_bytes = 1e12;
  const PaddingOption best = best_padding(5, 4, rich, UnrollPolicy::kInnerDim);
  EXPECT_EQ(best.pad, 2);  // 6 -> 8 points is the sweet spot
}

TEST(Padding, RejectsBadArguments) {
  EXPECT_THROW((void)evaluate_padding(0, 1, env(), UnrollPolicy::kInnerDim),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate_padding(3, -1, env(), UnrollPolicy::kInnerDim),
               std::invalid_argument);
  EXPECT_THROW((void)best_padding(3, -2, env(), UnrollPolicy::kInnerDim),
               std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::model
