/// SetupCache + SystemSetup contracts: a system built over a shared cached
/// setup is bitwise the system built directly from the mesh (masks,
/// diagonals, and whole CG solves), keys normalise the way the service
/// expects, and the LRU bound evicts cold entries while hits share one
/// immutable setup object.

#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "backend/cpu_backend.hpp"
#include "service/setup_cache.hpp"
#include "solver/cg.hpp"
#include "solver/helmholtz_system.hpp"
#include "solver/system_setup.hpp"

namespace semfpga::service {
namespace {

sem::BoxMeshSpec spec_of(int degree, int nel = 2) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = nel;
  return spec;
}

solver::CgResult run_cg(solver::PoissonSystem& system,
                        aligned_vector<double>& x) {
  const std::size_t n = system.n_local();
  aligned_vector<double> f(n, 1.0);
  aligned_vector<double> b(n);
  system.assemble_rhs(f, b);
  x.assign(n, 0.0);
  backend::CpuBackend backend(system);
  solver::CgOptions options;
  options.max_iterations = 20;
  options.tolerance = 0.0;
  return solver::solve_cg(backend, b, x, options);
}

TEST(SystemSetup, PoissonOverSharedSetupIsBitwiseTheDirectSystem) {
  const sem::Mesh mesh = sem::box_mesh(spec_of(4));
  solver::PoissonSystem direct(mesh);
  solver::PoissonSystem shared(solver::SystemSetup::build(mesh));

  ASSERT_EQ(direct.n_local(), shared.n_local());
  for (std::size_t p = 0; p < direct.n_local(); ++p) {
    EXPECT_EQ(direct.mask()[p], shared.mask()[p]);
    EXPECT_EQ(direct.jacobi_diagonal()[p], shared.jacobi_diagonal()[p]);
  }

  aligned_vector<double> x_direct, x_shared;
  const solver::CgResult r_direct = run_cg(direct, x_direct);
  const solver::CgResult r_shared = run_cg(shared, x_shared);
  EXPECT_EQ(r_direct.iterations, r_shared.iterations);
  EXPECT_EQ(r_direct.final_residual, r_shared.final_residual);
  for (std::size_t p = 0; p < x_direct.size(); ++p) {
    EXPECT_EQ(x_direct[p], x_shared[p]);
  }
}

TEST(SystemSetup, HelmholtzOverSharedSetupIsBitwiseTheDirectSystem) {
  const double lambda = 2.5;
  const sem::Mesh mesh = sem::box_mesh(spec_of(3));
  solver::HelmholtzSystem direct(mesh, lambda);
  solver::HelmholtzSystem shared(solver::SystemSetup::build(mesh, lambda),
                                 lambda);

  ASSERT_EQ(direct.n_local(), shared.n_local());
  for (std::size_t p = 0; p < direct.n_local(); ++p) {
    EXPECT_EQ(direct.jacobi_diagonal()[p], shared.jacobi_diagonal()[p]);
  }
  aligned_vector<double> x_direct, x_shared;
  const solver::CgResult r_direct = run_cg(direct, x_direct);
  const solver::CgResult r_shared = run_cg(shared, x_shared);
  EXPECT_EQ(r_direct.iterations, r_shared.iterations);
  EXPECT_EQ(r_direct.final_residual, r_shared.final_residual);
  for (std::size_t p = 0; p < x_direct.size(); ++p) {
    EXPECT_EQ(x_direct[p], x_shared[p]);
  }
}

TEST(SystemSetup, LambdaMismatchIsRefusedAtConstruction) {
  const sem::Mesh mesh = sem::box_mesh(spec_of(2));
  // A Poisson-shaped setup (mass_lambda 0) cannot back a lambda=1 Helmholtz
  // system: its jacobi diagonal is missing the mass term.
  const auto poisson_setup = solver::SystemSetup::build(mesh, 0.0);
  EXPECT_THROW(solver::HelmholtzSystem(poisson_setup, 1.0),
               std::invalid_argument);
  EXPECT_THROW(
      solver::PoissonSystem(solver::SystemSetup::build(mesh, 1.0)),
      std::invalid_argument);
  EXPECT_THROW(solver::PoissonSystem(nullptr), std::invalid_argument);
}

TEST(SetupKey, PoissonKeysIgnoreLambdaAndHelmholtzKeysKeepIt) {
  const sem::BoxMeshSpec spec = spec_of(3);
  EXPECT_EQ(key_of(spec, solver::OperatorKind::kPoisson, 1.0),
            key_of(spec, solver::OperatorKind::kPoisson, 2.0));
  EXPECT_FALSE(key_of(spec, solver::OperatorKind::kHelmholtz, 1.0) ==
               key_of(spec, solver::OperatorKind::kHelmholtz, 2.0));
  EXPECT_FALSE(key_of(spec, solver::OperatorKind::kPoisson, 0.0) ==
               key_of(spec, solver::OperatorKind::kHelmholtz, 0.0));
  EXPECT_FALSE(key_of(spec, solver::OperatorKind::kPoisson, 0.0) ==
               key_of(spec_of(4), solver::OperatorKind::kPoisson, 0.0));
}

TEST(SetupCache, HitsShareOneSetupAndLruEvictsTheColdest) {
  SetupCache cache(/*capacity=*/2);
  const SetupKey a = key_of(spec_of(2), solver::OperatorKind::kPoisson, 0.0);
  const SetupKey b = key_of(spec_of(3), solver::OperatorKind::kPoisson, 0.0);
  const SetupKey c = key_of(spec_of(2), solver::OperatorKind::kHelmholtz, 1.0);

  bool hit = true;
  const SetupCache::Ptr first = cache.get(a, &hit);
  EXPECT_FALSE(hit);
  const SetupCache::Ptr again = cache.get(a, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), again.get());  // one immutable setup, shared

  (void)cache.get(b, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);

  // a was touched most recently, so inserting c evicts b.
  (void)cache.get(a, &hit);
  EXPECT_TRUE(hit);
  (void)cache.get(c, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);

  (void)cache.get(b, &hit);
  EXPECT_FALSE(hit);  // b was the eviction victim
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_EQ(cache.evictions(), 2);
}

TEST(SetupCache, RejectsZeroCapacity) {
  EXPECT_THROW(SetupCache(0), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::service
