/// Admission control and dispatch triage: reject-on-full is a typed error,
/// close() turns pushes into ServiceStoppedError, pop_batch coalesces
/// same-key requests in FIFO order, and scripted reject@/timeout@ faults
/// surface as the same rejected/expired outcomes real overload would.

#include <future>
#include <stdexcept>

#include <gtest/gtest.h>

#include "service/queue.hpp"
#include "service/server.hpp"

namespace semfpga::service {
namespace {

SolveRequest small_request(int degree = 2) {
  SolveRequest request;
  request.mesh.degree = degree;
  request.mesh.nelx = request.mesh.nely = request.mesh.nelz = 2;
  request.max_iterations = 5;
  return request;
}

PendingSolve pending_for(std::int64_t id, int degree) {
  PendingSolve pending;
  pending.id = id;
  pending.request = small_request(degree);
  pending.key = key_of(pending.request.mesh, pending.request.kind,
                       pending.request.lambda);
  return pending;
}

TEST(RequestQueue, RejectsBeyondCapacityWithATypedError) {
  RequestQueue queue(/*capacity=*/2, /*faults=*/nullptr);
  queue.push(pending_for(0, 2));
  queue.push(pending_for(1, 2));
  try {
    queue.push(pending_for(2, 2));
    FAIL() << "expected QueueFullError";
  } catch (const QueueFullError& e) {
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
  }
  EXPECT_EQ(queue.size(), 2u);
}

TEST(RequestQueue, ClosedQueueRefusesPushesAndDrainsEmpty) {
  RequestQueue queue(4, nullptr);
  queue.push(pending_for(0, 2));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_THROW(queue.push(pending_for(1, 2)), ServiceStoppedError);
  EXPECT_EQ(queue.drain().size(), 1u);
  EXPECT_EQ(queue.size(), 0u);
  // pop_batch on a closed, drained queue returns empty without blocking.
  EXPECT_TRUE(queue.pop_batch(4, 0.0).empty());
}

TEST(RequestQueue, PopBatchCoalescesSameKeyRequestsInFifoOrder) {
  RequestQueue queue(8, nullptr);
  queue.push(pending_for(0, 2));  // key A
  queue.push(pending_for(1, 3));  // key B
  queue.push(pending_for(2, 2));  // key A again

  const auto first = queue.pop_batch(/*max_batch=*/4, 0.0);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].id, 0);
  EXPECT_EQ(first[1].id, 2);  // coalesced past the B in between

  const auto second = queue.pop_batch(4, 0.0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, 1);
}

TEST(RequestQueue, BatchCapLeavesTheRestQueued) {
  RequestQueue queue(8, nullptr);
  for (int i = 0; i < 3; ++i) {
    queue.push(pending_for(i, 2));
  }
  EXPECT_EQ(queue.pop_batch(/*max_batch=*/2, 0.0).size(), 2u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(SolveServer, ScriptedRejectAndTimeoutFaultsBecomeOutcomes) {
  ServerConfig config;
  config.workers = 1;
  config.max_batch = 1;
  // Request ids are the fault "iteration" coordinate: reject id 1 at
  // admission, expire id 2 at dequeue.
  config.faults = "reject@r0:i1,timeout@r0:i2";
  SolveServer server(config);

  std::future<SolveResponse> ok = server.submit(small_request());
  EXPECT_THROW((void)server.submit(small_request()), QueueFullError);
  std::future<SolveResponse> doomed = server.submit(small_request());

  const SolveResponse solved = ok.get();
  EXPECT_EQ(solved.outcome, Outcome::kSolved);
  EXPECT_TRUE(solved.converged || solved.iterations == 5);

  const SolveResponse expired = doomed.get();
  EXPECT_EQ(expired.outcome, Outcome::kExpired);
  EXPECT_EQ(expired.error, "expired by timeout fault");

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.solved, 1);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.expired, 1);
  ASSERT_EQ(server.fault_events().size(), 2u);
}

TEST(SolveServer, PastDeadlineRequestsExpireAtDequeue) {
  ServerConfig config;
  config.workers = 0;  // manual mode: the wait is whatever we make it
  SolveServer server(config);
  SolveRequest request = small_request();
  request.deadline_seconds = 1e-12;  // already stale by dispatch time
  std::future<SolveResponse> future = server.submit(request);
  EXPECT_EQ(server.run_once(), 1u);
  const SolveResponse response = future.get();
  EXPECT_EQ(response.outcome, Outcome::kExpired);
  EXPECT_EQ(response.error, "deadline exceeded");
  EXPECT_GT(response.queue_seconds, 0.0);
  server.stop();
}

TEST(SolveServer, StopRejectsStillQueuedRequests) {
  ServerConfig config;
  config.workers = 0;
  SolveServer server(config);
  std::future<SolveResponse> future = server.submit(small_request());
  server.stop();
  const SolveResponse response = future.get();
  EXPECT_EQ(response.outcome, Outcome::kRejected);
  EXPECT_EQ(response.error, "service stopped");
  EXPECT_THROW((void)server.submit(small_request()), ServiceStoppedError);
}

TEST(SolveServer, MalformedRequestsFailValidationUpFront) {
  ServerConfig config;
  config.workers = 0;
  SolveServer server(config);
  SolveRequest bad = small_request();
  bad.max_iterations = 0;
  EXPECT_THROW((void)server.submit(bad), std::invalid_argument);
  bad = small_request();
  bad.tolerance = -1.0;
  EXPECT_THROW((void)server.submit(bad), std::invalid_argument);
  server.stop();
}

TEST(Outcome, NamesAreStable) {
  EXPECT_STREQ(outcome_name(Outcome::kSolved), "solved");
  EXPECT_STREQ(outcome_name(Outcome::kRejected), "rejected");
  EXPECT_STREQ(outcome_name(Outcome::kExpired), "expired");
  EXPECT_STREQ(outcome_name(Outcome::kFailed), "failed");
}

}  // namespace
}  // namespace semfpga::service
