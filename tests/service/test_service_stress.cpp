/// Concurrency stress for the solve service, meant to run under TSan: many
/// tenant threads against a small worker pool and a smaller cache, checking
/// that every accepted request resolves, that identical requests produce
/// identical payloads whichever worker/batch/cache path served them, and
/// that the abort path unblocks clients without hanging.

#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/server.hpp"

namespace semfpga::service {
namespace {

SolveRequest request_of_key(int key) {
  SolveRequest request;
  request.mesh.degree = 2 + key;  // 3 distinct setup keys
  request.mesh.nelx = request.mesh.nely = request.mesh.nelz = 2;
  request.rhs_seed = 17;  // same forcing everywhere: payloads comparable per key
  request.max_iterations = 8;
  request.tolerance = 0.0;
  request.return_solution = true;
  return request;
}

TEST(ServiceStress, ConcurrentTenantsAllResolveWithIdenticalPayloadsPerKey) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 12;
  constexpr int kKeys = 3;

  ServerConfig config;
  config.workers = 4;
  config.queue_capacity = 256;  // no rejections: every future must solve
  config.cache_capacity = 2;    // smaller than the key set: eviction churn
  config.max_batch = 3;
  SolveServer server(config);

  std::vector<std::vector<std::future<SolveResponse>>> futures(kClients);
  std::vector<std::thread> tenants;
  tenants.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    tenants.emplace_back([&server, &futures, c] {
      for (int i = 0; i < kPerClient; ++i) {
        futures[static_cast<std::size_t>(c)].push_back(
            server.submit(request_of_key((c + i) % kKeys)));
      }
    });
  }
  for (std::thread& t : tenants) {
    t.join();
  }

  // One reference payload per key; every response for that key must match
  // it bitwise, whatever worker, batch, or cache state served it.
  std::vector<SolveResponse> reference(kKeys);
  std::vector<bool> seen(kKeys, false);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      const int key = (c + i) % kKeys;
      const SolveResponse response =
          futures[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)].get();
      ASSERT_EQ(response.outcome, Outcome::kSolved);
      if (!seen[static_cast<std::size_t>(key)]) {
        reference[static_cast<std::size_t>(key)] = response;
        seen[static_cast<std::size_t>(key)] = true;
        continue;
      }
      const SolveResponse& want = reference[static_cast<std::size_t>(key)];
      EXPECT_EQ(response.iterations, want.iterations);
      EXPECT_EQ(response.final_residual, want.final_residual);
      ASSERT_EQ(response.solution.size(), want.solution.size());
      for (std::size_t p = 0; p < response.solution.size(); ++p) {
        ASSERT_EQ(response.solution[p], want.solution[p]);
      }
    }
  }

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.solved, kClients * kPerClient);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GE(server.cache().evictions(), 1);  // the churn actually happened
}

TEST(ServiceStress, AbortStopUnblocksEveryClient) {
  ServerConfig config;
  config.workers = 0;  // nothing drains the queue
  config.queue_capacity = 32;
  SolveServer server(config);
  std::vector<std::future<SolveResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.submit(request_of_key(i % 3)));
  }
  server.stop(/*drain=*/false);
  for (auto& future : futures) {
    EXPECT_EQ(future.get().outcome, Outcome::kRejected);
  }
}

TEST(ServiceStress, DestructorDrainsOutstandingWork) {
  std::future<SolveResponse> future;
  {
    ServerConfig config;
    config.workers = 2;
    SolveServer server(config);
    future = server.submit(request_of_key(0));
  }  // ~SolveServer stops with drain
  EXPECT_EQ(future.get().outcome, Outcome::kSolved);
}

}  // namespace
}  // namespace semfpga::service
