/// The service determinism contract: a response's numeric payload
/// (iterations, residual, flops, solution vector) is bitwise identical to
/// solve_standalone() of the same request — for every backend x operator
/// kind, through the setup cache, and through batched fpga-sim dispatch.

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/server.hpp"

namespace semfpga::service {
namespace {

SolveRequest request_for(solver::OperatorKind kind, std::uint64_t seed) {
  SolveRequest request;
  request.mesh.degree = 3;
  request.mesh.nelx = request.mesh.nely = request.mesh.nelz = 2;
  request.kind = kind;
  request.lambda = kind == solver::OperatorKind::kHelmholtz ? 1.5 : 0.0;
  request.rhs_seed = seed;
  request.max_iterations = 15;
  request.tolerance = 0.0;
  request.return_solution = true;
  return request;
}

void expect_bitwise_equal(const SolveResponse& got, const SolveResponse& want) {
  EXPECT_EQ(got.outcome, Outcome::kSolved);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.converged, want.converged);
  EXPECT_EQ(got.final_residual, want.final_residual);
  EXPECT_EQ(got.flops, want.flops);
  ASSERT_EQ(got.solution.size(), want.solution.size());
  for (std::size_t p = 0; p < got.solution.size(); ++p) {
    ASSERT_EQ(got.solution[p], want.solution[p]) << "node " << p;
  }
}

TEST(ServiceParity, EveryBackendAndOperatorMatchesStandaloneBitwise) {
  for (const std::string& backend : {std::string("cpu"), std::string("fpga-sim")}) {
    for (const solver::OperatorKind kind :
         {solver::OperatorKind::kPoisson, solver::OperatorKind::kHelmholtz}) {
      const SolveRequest request = request_for(kind, /*seed=*/42);
      const SolveResponse standalone = solve_standalone(request, backend);

      ServerConfig config;
      config.workers = 2;
      config.backend = backend;
      SolveServer server(config);
      // Twice: the first goes through a cache miss, the second a cache hit.
      const SolveResponse cold = server.submit(request).get();
      const SolveResponse warm = server.submit(request).get();
      server.stop();

      expect_bitwise_equal(cold, standalone);
      expect_bitwise_equal(warm, standalone);
      EXPECT_TRUE(warm.setup_cache_hit);
    }
  }
}

TEST(ServiceParity, BatchedFpgaDispatchMatchesStandaloneBitwise) {
  // Manual mode makes batching deterministic: queue four same-key requests,
  // pump once, and all four must ride one device session.
  ServerConfig config;
  config.workers = 0;
  config.max_batch = 4;
  config.backend = "fpga-sim";
  config.backend_options.pcie_latency_s = 20e-6;  // latency must not leak
  SolveServer server(config);

  std::vector<std::future<SolveResponse>> futures;
  std::vector<SolveResponse> oracles;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const SolveRequest request =
        request_for(solver::OperatorKind::kPoisson, seed);
    oracles.push_back(solve_standalone(request, "fpga-sim"));
    futures.push_back(server.submit(request));
  }
  EXPECT_EQ(server.run_once(), 4u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const SolveResponse response = futures[i].get();
    EXPECT_EQ(response.batch_size, 4);
    expect_bitwise_equal(response, oracles[i]);
  }
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.batched_solves, 4);
  EXPECT_EQ(stats.solved, 4);
}

TEST(ServiceParity, MixedKeysBatchSeparately) {
  ServerConfig config;
  config.workers = 0;
  config.max_batch = 8;
  SolveServer server(config);
  auto poisson = server.submit(request_for(solver::OperatorKind::kPoisson, 7));
  auto helmholtz =
      server.submit(request_for(solver::OperatorKind::kHelmholtz, 7));
  EXPECT_EQ(server.run_once(), 1u);  // keys differ: no coalescing
  EXPECT_EQ(server.run_once(), 1u);
  EXPECT_EQ(server.run_once(), 0u);
  EXPECT_EQ(poisson.get().batch_size, 1);
  EXPECT_EQ(helmholtz.get().batch_size, 1);
  server.stop();
}

}  // namespace
}  // namespace semfpga::service
