/// Multi-thread determinism smoke test for the fused CG path: the solver
/// must produce the same iterates — bit for bit — at any thread count,
/// because the element partitions, owner-computes gather-scatter sweeps and
/// fixed-chunk reductions are all thread-count independent.

#include <cmath>

#include <gtest/gtest.h>

#include "solver/cg.hpp"
#include "solver/nekbone.hpp"

namespace semfpga::solver {
namespace {

constexpr double kPi = 3.14159265358979323846;

struct Solve {
  int iterations = 0;
  bool converged = false;
  double final_residual = 0.0;
  std::vector<double> history;
  aligned_vector<double> x;
};

Solve run_solve(int threads, bool use_jacobi) {
  sem::BoxMeshSpec spec;
  spec.degree = 6;
  spec.nelx = spec.nely = spec.nelz = 3;
  spec.deformation = sem::Deformation::kSine;
  spec.deformation_amplitude = 0.03;
  const sem::Mesh mesh = sem::box_mesh(spec);
  PoissonSystem system(mesh);
  system.set_threads(threads);

  const std::size_t n = system.n_local();
  aligned_vector<double> f(n);
  system.sample(
      [](double x, double y, double z) {
        return 3.0 * kPi * kPi * std::sin(kPi * x) * std::sin(kPi * y) *
               std::sin(kPi * z);
      },
      std::span<double>(f.data(), n));
  aligned_vector<double> b(n);
  system.assemble_rhs(std::span<const double>(f.data(), n), std::span<double>(b.data(), n));

  CgOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 400;
  options.use_jacobi = use_jacobi;
  options.record_history = true;
  options.threads = threads;

  Solve out;
  out.x.assign(n, 0.0);
  const CgResult r = solve_cg(system, std::span<const double>(b.data(), n),
                              std::span<double>(out.x.data(), n), options);
  out.iterations = r.iterations;
  out.converged = r.converged;
  out.final_residual = r.final_residual;
  out.history = r.residual_history;
  return out;
}

class CgThreads : public ::testing::TestWithParam<bool> {};

TEST_P(CgThreads, RethreadingIsBitwiseDeterministic) {
  const bool use_jacobi = GetParam();
  const Solve serial = run_solve(1, use_jacobi);
  ASSERT_TRUE(serial.converged);

  for (const int threads : {2, 4, 0}) {  // 0 = all hardware threads
    const Solve threaded = run_solve(threads, use_jacobi);
    EXPECT_TRUE(threaded.converged);
    // Iteration counts unchanged from the serial path...
    ASSERT_EQ(threaded.iterations, serial.iterations) << threads << " threads";
    // ...and so is every residual in the history, exactly.
    ASSERT_EQ(threaded.history.size(), serial.history.size());
    for (std::size_t i = 0; i < serial.history.size(); ++i) {
      ASSERT_EQ(threaded.history[i], serial.history[i])
          << "iteration " << i << " at " << threads << " threads";
    }
    ASSERT_EQ(threaded.final_residual, serial.final_residual);
    for (std::size_t p = 0; p < serial.x.size(); ++p) {
      ASSERT_EQ(threaded.x[p], serial.x[p]) << "solution dof " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Preconditioners, CgThreads, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& tpi) {
                           return tpi.param ? "jacobi" : "identity";
                         });

TEST(NekboneThreads, ProxyRunIsThreadCountInvariant) {
  NekboneConfig config;
  config.degree = 5;
  config.nelx = config.nely = config.nelz = 3;
  config.cg_iterations = 25;

  config.threads = 1;
  const NekboneResult serial = run_nekbone(config);
  config.threads = 4;
  const NekboneResult threaded = run_nekbone(config);

  EXPECT_EQ(serial.iterations, threaded.iterations);
  EXPECT_EQ(serial.final_residual, threaded.final_residual);
  EXPECT_EQ(serial.flops, threaded.flops);
}

TEST(NekboneVariants, EveryEngineVariantConvergesAlike) {
  // Different variants reorder floating-point sums, so iterates differ in
  // the last bits — but the solve must converge to the same answer.
  NekboneConfig config;
  config.degree = 4;
  config.nelx = config.nely = config.nelz = 2;
  config.cg_iterations = 40;

  config.ax_variant = kernels::AxVariant::kReference;
  const NekboneResult ref = run_nekbone(config);
  for (const kernels::AxVariant v : kernels::kAllAxVariants) {
    config.ax_variant = v;
    const NekboneResult r = run_nekbone(config);
    EXPECT_EQ(r.iterations, ref.iterations) << kernels::ax_variant_name(v);
    EXPECT_NEAR(r.final_residual, ref.final_residual,
                1e-8 * std::abs(ref.final_residual) + 1e-14)
        << kernels::ax_variant_name(v);
  }
}

}  // namespace
}  // namespace semfpga::solver
