/// The supervised CG's two contracts: (1) with no fault firing, the
/// checkpointed solve is bitwise identical to the plain solve on every
/// backend × fused × preconditioner × threads combination; (2) when a
/// reduction is corrupted, the solve rolls back to the last checkpoint,
/// replays, and converges to the exact trajectory of the undisturbed run —
/// or throws a typed ResilienceExhaustedError carrying a non-empty report
/// once the retry budget runs out.

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "backend/backend.hpp"
#include "solver/poisson_system.hpp"
#include "solver/resilient_cg.hpp"

namespace semfpga::solver {
namespace {

constexpr double kPi = 3.14159265358979323846;

sem::Mesh make_mesh() {
  sem::BoxMeshSpec spec;
  spec.degree = 3;
  spec.nelx = spec.nely = 2;
  spec.nelz = 4;
  return sem::box_mesh(spec);
}

/// Forcing + RHS of the manufactured problem on `system`.
aligned_vector<double> make_rhs(const PoissonSystem& system) {
  const std::size_t n = system.n_local();
  aligned_vector<double> f(n);
  system.sample(
      [](double x, double y, double z) {
        return std::sin(kPi * x) * std::sin(kPi * y) * std::sin(kPi * z);
      },
      std::span<double>(f.data(), n));
  aligned_vector<double> b(n);
  system.assemble_rhs(std::span<const double>(f.data(), n),
                      std::span<double>(b.data(), n));
  return b;
}

void expect_bitwise_equal(const CgResult& want, const aligned_vector<double>& want_x,
                          const CgResult& got, const aligned_vector<double>& got_x,
                          const std::string& label) {
  ASSERT_EQ(got.iterations, want.iterations) << label;
  EXPECT_EQ(got.converged, want.converged) << label;
  EXPECT_EQ(got.final_residual, want.final_residual) << label;
  ASSERT_EQ(got.residual_history.size(), want.residual_history.size()) << label;
  for (std::size_t i = 0; i < want.residual_history.size(); ++i) {
    ASSERT_EQ(got.residual_history[i], want.residual_history[i])
        << label << " iteration " << i;
  }
  ASSERT_EQ(got_x.size(), want_x.size()) << label;
  for (std::size_t p = 0; p < want_x.size(); ++p) {
    ASSERT_EQ(got_x[p], want_x[p]) << label << " dof " << p;
  }
}

/// Wraps a Backend and corrupts the result of scripted reduce() calls —
/// the single-process stand-in for a bad transfer feeding a dot product.
class CorruptingBackend final : public backend::Backend {
 public:
  CorruptingBackend(Backend& inner, int corrupt_at_call, double corrupt_value,
                    bool persistent)
      : inner_(inner),
        corrupt_at_call_(corrupt_at_call),
        corrupt_value_(corrupt_value),
        persistent_(persistent) {}

  [[nodiscard]] const char* name() const noexcept override { return "corrupting"; }
  [[nodiscard]] std::size_t n_local() const noexcept override { return inner_.n_local(); }
  [[nodiscard]] int threads() const noexcept override { return inner_.threads(); }
  [[nodiscard]] const aligned_vector<double>& jacobi_diagonal() const override {
    return inner_.jacobi_diagonal();
  }
  [[nodiscard]] const aligned_vector<double>& inv_multiplicity() const override {
    return inner_.inv_multiplicity();
  }
  [[nodiscard]] const aligned_vector<double>& mask() const override {
    return inner_.mask();
  }
  void apply(std::span<const double> u, std::span<double> w) override {
    inner_.apply(u, w);
  }
  void apply_unmasked(std::span<const double> u, std::span<double> w) override {
    inner_.apply_unmasked(u, w);
  }
  void qqt(std::span<double> local) override { inner_.qqt(local); }
  void apply_mask(std::span<double> w) override { inner_.apply_mask(w); }
  double reduce(backend::PassCost cost, backend::ReduceBody body) override {
    const double value = inner_.reduce(cost, body);
    ++reduce_calls_;
    if (reduce_calls_ == corrupt_at_call_ || (persistent_ && reduce_calls_ > corrupt_at_call_)) {
      ++corruptions;
      return corrupt_value_;
    }
    return value;
  }
  void vector_pass(backend::PassCost cost, backend::PassBody body) override {
    inner_.vector_pass(cost, body);
  }
  [[nodiscard]] std::int64_t operator_flops() const override {
    return inner_.operator_flops();
  }
  [[nodiscard]] std::int64_t global_dofs() const override {
    return inner_.global_dofs();
  }
  [[nodiscard]] std::size_t n_global() const override { return inner_.n_global(); }
  void gather(std::span<const double> global, std::span<double> local) const override {
    inner_.gather(global, local);
  }

  int corruptions = 0;

 private:
  Backend& inner_;
  int reduce_calls_ = 0;
  int corrupt_at_call_;
  double corrupt_value_;
  bool persistent_;
};

TEST(ResilientCg, BitwiseIdenticalToPlainSolveAcrossBackends) {
  const sem::Mesh mesh = make_mesh();
  for (const char* name : {"cpu", "fpga-sim"}) {
    for (const bool fused : {true, false}) {
      for (const bool jacobi : {false, true}) {
        PoissonSystem system(mesh);
        system.set_fused(fused);
        const std::size_t n = system.n_local();
        const aligned_vector<double> b = make_rhs(system);

        CgOptions plain;
        plain.max_iterations = 25;
        plain.tolerance = 1e-12;
        plain.use_jacobi = jacobi;
        plain.record_history = true;

        const auto be1 = backend::make(name, system);
        aligned_vector<double> x_plain(n, 0.0);
        const CgResult want = solve_cg(*be1, std::span<const double>(b.data(), n),
                                       std::span<double>(x_plain.data(), n), plain);
        ASSERT_GT(want.iterations, 4);

        ResilientCgOptions options;
        options.cg = plain;
        options.checkpoint_every = 4;
        const auto be2 = backend::make(name, system);
        aligned_vector<double> x_sup(n, 0.0);
        const ResilientCgResult got =
            solve_cg_resilient(*be2, std::span<const double>(b.data(), n),
                               std::span<double>(x_sup.data(), n), options);

        const std::string label = std::string(name) + " fused=" +
                                  std::to_string(fused) + " jacobi=" +
                                  std::to_string(jacobi);
        expect_bitwise_equal(want, x_plain, got.cg, x_sup, label);
        // The undisturbed run records nothing but the snapshots it took.
        EXPECT_TRUE(got.report.empty()) << label;
        EXPECT_GT(got.report.checkpoints_taken, 0) << label;
      }
    }
  }
}

TEST(ResilientCg, NanCorruptionRollsBackToTheUndisturbedTrajectory) {
  const sem::Mesh mesh = make_mesh();
  PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  const aligned_vector<double> b = make_rhs(system);

  CgOptions plain;
  plain.max_iterations = 20;
  plain.tolerance = 0.0;  // fixed iteration count
  plain.record_history = true;

  const auto clean = backend::make("cpu", system);
  aligned_vector<double> x_want(n, 0.0);
  const CgResult want = solve_cg(*clean, std::span<const double>(b.data(), n),
                                 std::span<double>(x_want.data(), n), plain);

  // One NaN mid-solve: the guard faults, the solve rolls back to the last
  // checkpoint, and the replayed (uncorrupted) trajectory must be exact.
  const auto inner = backend::make("cpu", system);
  CorruptingBackend corrupting(*inner, /*corrupt_at_call=*/21,
                               std::numeric_limits<double>::quiet_NaN(),
                               /*persistent=*/false);
  ResilientCgOptions options;
  options.cg = plain;
  options.checkpoint_every = 4;
  aligned_vector<double> x_got(n, 0.0);
  const ResilientCgResult got =
      solve_cg_resilient(corrupting, std::span<const double>(b.data(), n),
                         std::span<double>(x_got.data(), n), options);

  EXPECT_EQ(corrupting.corruptions, 1);
  EXPECT_EQ(got.report.numerical_faults, 1);
  EXPECT_EQ(got.report.retries, 1);
  EXPECT_EQ(got.report.checkpoints_restored, 1);
  EXPECT_FALSE(got.report.events.empty());
  EXPECT_FALSE(got.report.to_string().empty());
  expect_bitwise_equal(want, x_want, got.cg, x_got, "nan rollback");
}

TEST(ResilientCg, FiniteDivergenceTripsTheDivergenceGuard) {
  // An astronomically wrong but finite reduction — the bit-flip model —
  // must be caught by the divergence guard, not the NaN guard.
  const sem::Mesh mesh = make_mesh();
  PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  const aligned_vector<double> b = make_rhs(system);

  CgOptions plain;
  plain.max_iterations = 20;
  plain.tolerance = 0.0;
  plain.record_history = true;

  const auto clean = backend::make("cpu", system);
  aligned_vector<double> x_want(n, 0.0);
  const CgResult want = solve_cg(*clean, std::span<const double>(b.data(), n),
                                 std::span<double>(x_want.data(), n), plain);

  // Call 22 is the fused axpy + residual-norm reduction of iteration 7
  // (calls 1-2 are the initial residual + Jacobi rho, then three
  // reductions per iteration): the corrupted scalar lands in rr, where the
  // divergence guard reads it — corrupting the <p, Ap> dot instead would
  // merely zero alpha, which no norm-based guard can see.
  const auto inner = backend::make("cpu", system);
  CorruptingBackend corrupting(*inner, /*corrupt_at_call=*/22, 1e280,
                               /*persistent=*/false);
  ResilientCgOptions options;
  options.cg = plain;
  options.checkpoint_every = 4;
  options.divergence_factor = 1e6;
  aligned_vector<double> x_got(n, 0.0);
  const ResilientCgResult got =
      solve_cg_resilient(corrupting, std::span<const double>(b.data(), n),
                         std::span<double>(x_got.data(), n), options);

  EXPECT_EQ(got.report.numerical_faults, 1);
  EXPECT_EQ(got.report.checkpoints_restored, 1);
  expect_bitwise_equal(want, x_want, got.cg, x_got, "divergence rollback");
}

TEST(ResilientCg, RestartsFromTheInitialGuessWithoutCheckpoints) {
  const sem::Mesh mesh = make_mesh();
  PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  const aligned_vector<double> b = make_rhs(system);

  CgOptions plain;
  plain.max_iterations = 15;
  plain.tolerance = 0.0;
  plain.record_history = true;

  const auto clean = backend::make("cpu", system);
  aligned_vector<double> x_want(n, 0.0);
  const CgResult want = solve_cg(*clean, std::span<const double>(b.data(), n),
                                 std::span<double>(x_want.data(), n), plain);

  const auto inner = backend::make("cpu", system);
  CorruptingBackend corrupting(*inner, /*corrupt_at_call=*/9,
                               std::numeric_limits<double>::quiet_NaN(),
                               /*persistent=*/false);
  ResilientCgOptions options;
  options.cg = plain;
  options.checkpoint_every = 0;  // no snapshots: recovery restarts from x0
  aligned_vector<double> x_got(n, 0.0);
  const ResilientCgResult got =
      solve_cg_resilient(corrupting, std::span<const double>(b.data(), n),
                         std::span<double>(x_got.data(), n), options);

  EXPECT_EQ(got.report.checkpoints_taken, 0);
  EXPECT_EQ(got.report.checkpoints_restored, 0);
  EXPECT_EQ(got.report.retries, 1);
  expect_bitwise_equal(want, x_want, got.cg, x_got, "restart from x0");
}

TEST(ResilientCg, ExhaustedRetryBudgetThrowsTypedErrorWithReport) {
  const sem::Mesh mesh = make_mesh();
  PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  const aligned_vector<double> b = make_rhs(system);

  const auto inner = backend::make("cpu", system);
  // Every reduction from call 5 on is NaN: no rollback can ever succeed.
  CorruptingBackend corrupting(*inner, /*corrupt_at_call=*/5,
                               std::numeric_limits<double>::quiet_NaN(),
                               /*persistent=*/true);
  ResilientCgOptions options;
  options.cg.max_iterations = 20;
  options.cg.tolerance = 0.0;
  options.checkpoint_every = 2;
  options.max_retries = 2;
  aligned_vector<double> x(n, 0.0);
  try {
    (void)solve_cg_resilient(corrupting, std::span<const double>(b.data(), n),
                             std::span<double>(x.data(), n), options);
    FAIL() << "a persistently corrupted solve must exhaust its budget";
  } catch (const ResilienceExhaustedError& e) {
    const ResilienceReport& report = e.report();
    EXPECT_EQ(report.retries, 2);
    EXPECT_EQ(report.numerical_faults, 3);  // initial attempt + 2 retries
    EXPECT_FALSE(report.events.empty());
    EXPECT_FALSE(report.empty());
  }
}

TEST(ResilientCg, RejectsCallerOwnedHookAndResume) {
  const sem::Mesh mesh = make_mesh();
  PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  const aligned_vector<double> b = make_rhs(system);
  const auto be = backend::make("cpu", system);
  aligned_vector<double> x(n, 0.0);

  ResilientCgOptions options;
  options.cg.iteration_hook = [](const CgIterationView&) {};
  EXPECT_THROW((void)solve_cg_resilient(*be, std::span<const double>(b.data(), n),
                                        std::span<double>(x.data(), n), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::solver
