#include "solver/cg.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/ax.hpp"

namespace semfpga::solver {
namespace {

constexpr double kPi = 3.14159265358979323846;

sem::Mesh make_mesh(int degree, int nel, sem::Deformation def = sem::Deformation::kNone) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = nel;
  spec.deformation = def;
  spec.deformation_amplitude = 0.03;
  return sem::box_mesh(spec);
}

/// Solves -lap(u) = f with u = sin(pi x) sin(pi y) sin(pi z) manufactured.
struct ManufacturedSolve {
  explicit ManufacturedSolve(int degree, int nel,
                             sem::Deformation def = sem::Deformation::kNone,
                             CgOptions options = {})
      : mesh(make_mesh(degree, nel, def)), system(mesh) {
    const std::size_t n = system.n_local();
    aligned_vector<double> f(n);
    system.sample(
        [](double px, double py, double pz) {
          return 3.0 * kPi * kPi * std::sin(kPi * px) * std::sin(kPi * py) *
                 std::sin(kPi * pz);
        },
        std::span<double>(f.data(), n));
    aligned_vector<double> b(n);
    system.assemble_rhs(std::span<const double>(f.data(), n),
                        std::span<double>(b.data(), n));
    x.assign(n, 0.0);
    result = solve_cg(system, std::span<const double>(b.data(), n),
                      std::span<double>(x.data(), n), options);
  }

  /// Max-norm error against the analytic solution.
  [[nodiscard]] double error() const {
    const std::size_t n = system.n_local();
    aligned_vector<double> exact(n);
    system.sample(
        [](double px, double py, double pz) {
          return std::sin(kPi * px) * std::sin(kPi * py) * std::sin(kPi * pz);
        },
        std::span<double>(exact.data(), n));
    double err = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      err = std::max(err, std::abs(x[p] - exact[p]));
    }
    return err;
  }

  sem::Mesh mesh;
  PoissonSystem system;
  aligned_vector<double> x;
  CgResult result;
};

TEST(Cg, ConvergesOnManufacturedProblem) {
  CgOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 400;
  ManufacturedSolve solve(4, 2, sem::Deformation::kNone, options);
  EXPECT_TRUE(solve.result.converged);
  EXPECT_LT(solve.result.final_residual, 1e-10);
  EXPECT_LT(solve.error(), 5e-4);
}

TEST(Cg, SpectralConvergenceWithDegree) {
  // Error drops by orders of magnitude as N rises — the defining property
  // of SEM and the reason high-order degrees matter (paper Section II).
  CgOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 600;
  const double e2 = ManufacturedSolve(2, 2, sem::Deformation::kNone, options).error();
  const double e4 = ManufacturedSolve(4, 2, sem::Deformation::kNone, options).error();
  const double e6 = ManufacturedSolve(6, 2, sem::Deformation::kNone, options).error();
  EXPECT_LT(e4, e2 * 0.05);
  EXPECT_LT(e6, e4 * 0.05);
  EXPECT_LT(e6, 1e-7);
}

TEST(Cg, ConvergesOnDeformedMesh) {
  CgOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 600;
  ManufacturedSolve solve(5, 2, sem::Deformation::kSine, options);
  EXPECT_TRUE(solve.result.converged);
  // The deformed domain is still the unit cube with zero BCs, so the same
  // manufactured solution applies; accuracy is spectral.
  EXPECT_LT(solve.error(), 1e-4);
}

TEST(Cg, ResidualHistoryIsRecordedAndTrendsDown) {
  CgOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 300;
  options.record_history = true;
  ManufacturedSolve solve(3, 2, sem::Deformation::kNone, options);
  const auto& h = solve.result.residual_history;
  ASSERT_GT(h.size(), 3u);
  EXPECT_LT(h.back(), h.front() * 1e-6);
}

TEST(Cg, JacobiPreconditioningDoesNotBreakConvergence) {
  CgOptions plain;
  plain.use_jacobi = false;
  plain.tolerance = 1e-10;
  plain.max_iterations = 500;
  CgOptions jacobi = plain;
  jacobi.use_jacobi = true;
  ManufacturedSolve a(3, 3, sem::Deformation::kNone, plain);
  ManufacturedSolve b(3, 3, sem::Deformation::kNone, jacobi);
  EXPECT_TRUE(a.result.converged);
  EXPECT_TRUE(b.result.converged);
  EXPECT_LT(a.error(), 1e-3);
  EXPECT_LT(b.error(), 1e-3);
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const sem::Mesh mesh = make_mesh(3, 2);
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  aligned_vector<double> b(n, 0.0), x(n, 0.0);
  const CgResult r = solve_cg(system, std::span<const double>(b.data(), n),
                              std::span<double>(x.data(), n));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  for (double v : x) {
    ASSERT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Cg, HonoursIterationCap) {
  CgOptions options;
  options.max_iterations = 3;
  options.tolerance = 0.0;
  ManufacturedSolve solve(3, 2, sem::Deformation::kNone, options);
  EXPECT_EQ(solve.result.iterations, 3);
  EXPECT_FALSE(solve.result.converged);
}

TEST(Cg, FlopAccountingIsPlausible) {
  CgOptions options;
  options.max_iterations = 10;
  options.tolerance = 0.0;
  ManufacturedSolve solve(3, 2, sem::Deformation::kNone, options);
  // At least 11 Ax applications (initial residual + 10 iterations).
  const std::int64_t ax_flops = kernels::ax_flops(4, solve.mesh.n_elements());
  EXPECT_GE(solve.result.flops, 11 * ax_flops);
  EXPECT_LT(solve.result.flops, 13 * ax_flops + 12 * 11 * 4096);
}

TEST(Cg, InitialGuessIsHonoured) {
  // Solving from the exact solution should converge immediately.
  CgOptions options;
  options.tolerance = 1e-8;
  options.max_iterations = 200;
  ManufacturedSolve first(4, 2, sem::Deformation::kNone, options);
  ASSERT_TRUE(first.result.converged);

  const std::size_t n = first.system.n_local();
  aligned_vector<double> f(n);
  first.system.sample(
      [](double x, double y, double z) {
        return 3.0 * kPi * kPi * std::sin(kPi * x) * std::sin(kPi * y) *
               std::sin(kPi * z);
      },
      std::span<double>(f.data(), n));
  aligned_vector<double> b(n);
  first.system.assemble_rhs(std::span<const double>(f.data(), n),
                            std::span<double>(b.data(), n));
  aligned_vector<double> x = first.x;
  const CgResult again = solve_cg(first.system, std::span<const double>(b.data(), n),
                                  std::span<double>(x.data(), n), options);
  EXPECT_LE(again.iterations, 2);
}

}  // namespace
}  // namespace semfpga::solver
