#include "solver/poisson_system.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace semfpga::solver {
namespace {

sem::Mesh make_mesh(int degree, sem::Deformation def = sem::Deformation::kNone) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = 2;
  spec.deformation = def;
  spec.deformation_amplitude = 0.04;
  return sem::box_mesh(spec);
}

TEST(PoissonSystem, MaskZeroesExactlyTheBoundary) {
  const sem::Mesh mesh = make_mesh(3);
  const PoissonSystem system(mesh);
  const auto& mask = system.mask();
  const auto& bnd = mesh.boundary_flag();
  for (std::size_t p = 0; p < mask.size(); ++p) {
    const bool on_boundary = bnd[static_cast<std::size_t>(mesh.global_id()[p])] != 0;
    EXPECT_DOUBLE_EQ(mask[p], on_boundary ? 0.0 : 1.0);
  }
}

TEST(PoissonSystem, OperatorOutputIsMaskedAndContinuous) {
  const sem::Mesh mesh = make_mesh(2, sem::Deformation::kSine);
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  aligned_vector<double> u(n), w(n);
  SplitMix64 rng(11);
  for (double& v : u) {
    v = rng.uniform(-1.0, 1.0);
  }
  system.apply(std::span<const double>(u.data(), n), std::span<double>(w.data(), n));
  // Masked DOFs are zero.
  for (std::size_t p = 0; p < n; ++p) {
    if (system.mask()[p] == 0.0) {
      ASSERT_DOUBLE_EQ(w[p], 0.0);
    }
  }
  // Continuity: shared DOFs agree.
  std::vector<double> value(system.gs().n_global(), 0.0);
  std::vector<char> seen(system.gs().n_global(), 0);
  for (std::size_t p = 0; p < n; ++p) {
    const auto id = static_cast<std::size_t>(system.gs().ids()[p]);
    if (seen[id] == 0) {
      value[id] = w[p];
      seen[id] = 1;
    } else {
      ASSERT_DOUBLE_EQ(w[p], value[id]);
    }
  }
}

class SystemSymmetry : public ::testing::TestWithParam<sem::Deformation> {};

TEST_P(SystemSymmetry, AssembledOperatorIsSymmetricInWeightedDot) {
  const sem::Mesh mesh = make_mesh(3, GetParam());
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  aligned_vector<double> u(n), v(n), au(n), av(n);
  // Build continuous masked inputs.
  SplitMix64 rng(13);
  std::vector<double> gu(system.gs().n_global()), gv(system.gs().n_global());
  for (std::size_t i = 0; i < gu.size(); ++i) {
    gu[i] = rng.uniform(-1.0, 1.0);
    gv[i] = rng.uniform(-1.0, 1.0);
  }
  system.gs().gather(gu, std::span<double>(u.data(), n));
  system.gs().gather(gv, std::span<double>(v.data(), n));
  for (std::size_t p = 0; p < n; ++p) {
    u[p] *= system.mask()[p];
    v[p] *= system.mask()[p];
  }
  system.apply(std::span<const double>(u.data(), n), std::span<double>(au.data(), n));
  system.apply(std::span<const double>(v.data(), n), std::span<double>(av.data(), n));
  const double uav = system.weighted_dot(std::span<const double>(u.data(), n),
                                         std::span<const double>(av.data(), n));
  const double vau = system.weighted_dot(std::span<const double>(v.data(), n),
                                         std::span<const double>(au.data(), n));
  EXPECT_NEAR(uav, vau, 1e-9 * std::max(1.0, std::abs(uav)));
}

INSTANTIATE_TEST_SUITE_P(Deformations, SystemSymmetry,
                         ::testing::Values(sem::Deformation::kNone,
                                           sem::Deformation::kSine,
                                           sem::Deformation::kTwist));

TEST(PoissonSystem, JacobiDiagonalIsPositive) {
  const sem::Mesh mesh = make_mesh(4, sem::Deformation::kSine);
  const PoissonSystem system(mesh);
  for (double d : system.jacobi_diagonal()) {
    ASSERT_GT(d, 0.0);
  }
}

TEST(PoissonSystem, RhsAssemblyMatchesQuadrature) {
  // For f = 1 the assembled rhs at an interior DOF is its total mass
  // (sum of w|J| over all local copies).
  const sem::Mesh mesh = make_mesh(2);
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  aligned_vector<double> f(n, 1.0), b(n);
  system.assemble_rhs(std::span<const double>(f.data(), n), std::span<double>(b.data(), n));

  aligned_vector<double> mass_sum(n);
  for (std::size_t p = 0; p < n; ++p) {
    mass_sum[p] = system.geom().mass[p];
  }
  system.gs().qqt(std::span<double>(mass_sum.data(), n));
  for (std::size_t p = 0; p < n; ++p) {
    if (system.mask()[p] != 0.0) {
      ASSERT_NEAR(b[p], mass_sum[p], 1e-13);
    } else {
      ASSERT_DOUBLE_EQ(b[p], 0.0);
    }
  }
}

TEST(PoissonSystem, CustomLocalOperatorIsUsed) {
  const sem::Mesh mesh = make_mesh(2);
  PoissonSystem system(mesh);
  bool called = false;
  system.set_local_operator([&called](std::span<const double> u, std::span<double> w) {
    called = true;
    for (std::size_t p = 0; p < w.size(); ++p) {
      w[p] = 2.0 * u[p];
    }
  });
  const std::size_t n = system.n_local();
  aligned_vector<double> u(n, 1.0), w(n);
  system.apply(std::span<const double>(u.data(), n), std::span<double>(w.data(), n));
  EXPECT_TRUE(called);
}

TEST(PoissonSystem, SampleEvaluatesCoordinates) {
  const sem::Mesh mesh = make_mesh(2);
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  aligned_vector<double> s(n);
  system.sample([](double x, double y, double z) { return x + 10.0 * y + 100.0 * z; },
                std::span<double>(s.data(), n));
  for (std::size_t p = 0; p < n; ++p) {
    const double expected =
        mesh.x()[p] + 10.0 * mesh.y()[p] + 100.0 * mesh.z()[p];
    ASSERT_DOUBLE_EQ(s[p], expected);
  }
}

}  // namespace
}  // namespace semfpga::solver
