/// Contract of the fused qqt-in-operator sweep: PoissonSystem's fused apply
/// must be *bitwise* identical to the split Ax -> qqt -> mask path, for
/// every engine variant, at every thread count, across the paper degrees on
/// deformed meshes — and a CG solve through the fused operator must be
/// bitwise deterministic under re-threading and bitwise equal to the split
/// solve.

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "solver/cg.hpp"

namespace semfpga::solver {
namespace {

constexpr double kPi = 3.14159265358979323846;

sem::Mesh make_mesh(int degree, sem::Deformation def) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = 2;
  spec.deformation = def;
  spec.deformation_amplitude = 0.04;
  return sem::box_mesh(spec);
}

aligned_vector<double> random_field(std::size_t n, std::uint64_t seed) {
  aligned_vector<double> v(n);
  SplitMix64 rng(seed);
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0);
  }
  return v;
}

using FusedCase = std::tuple<int, kernels::AxVariant, sem::Deformation>;

class FusedParity : public ::testing::TestWithParam<FusedCase> {};

TEST(FusedIndexWidth, Int32SurfacePassIsBitwiseEqualToInt64) {
  // The shared-CSR satellite: running the fused sweep through the 32-bit
  // position schedule (what PoissonSystem does on every mesh below 2^31
  // local DOFs) must reproduce the 64-bit large-mesh path bit for bit.
  const sem::Mesh mesh = make_mesh(5, sem::Deformation::kSine);
  const PoissonSystem system(mesh);
  const GatherScatter& gs = system.gs();
  const std::size_t n = system.n_local();
  const aligned_vector<double> u = random_field(n, 1234);

  kernels::AxArgs args;
  args.g = std::span<const double>(system.geom().g.data(), system.geom().g.size());
  args.dx = std::span<const double>(system.ref().deriv().d.data(),
                                    system.ref().deriv().d.size());
  args.dxt = std::span<const double>(system.ref().deriv().dt.data(),
                                     system.ref().deriv().dt.size());
  args.n1d = system.ref().n1d();
  args.n_elements = system.geom().n_elements;

  kernels::AxFusedScatter fused;
  fused.shared_offsets = gs.shared_offsets();
  fused.shared_positions = gs.shared_positions();
  fused.shared_splits = gs.shared_splits();
  ASSERT_FALSE(gs.shared_positions32().empty());

  aligned_vector<double> w64(n, 0.0);
  args.u = std::span<const double>(u.data(), n);
  args.w = std::span<double>(w64.data(), n);
  kernels::ax_run_fused(kernels::AxVariant::kFixed, args, fused,
                        kernels::AxExecPolicy{1});  // 64-bit schedule

  fused.shared_positions32 = gs.shared_positions32();
  for (const int threads : {1, 2}) {
    aligned_vector<double> w32(n, 0.0);
    args.w = std::span<double>(w32.data(), n);
    kernels::ax_run_fused(kernels::AxVariant::kFixed, args, fused,
                          kernels::AxExecPolicy{threads});
    for (std::size_t p = 0; p < n; ++p) {
      ASSERT_EQ(w32[p], w64[p]) << "dof " << p << " at " << threads << " threads";
    }
  }
}

TEST_P(FusedParity, FusedApplyIsBitwiseEqualToSplitAtAnyThreadCount) {
  const auto [degree, variant, deformation] = GetParam();
  const sem::Mesh mesh = make_mesh(degree, deformation);
  PoissonSystem system(mesh);
  system.set_ax_variant(variant);

  const std::size_t n = system.n_local();
  const aligned_vector<double> u = random_field(n, 97 + static_cast<std::uint64_t>(degree));
  aligned_vector<double> w_split(n, 0.0);
  aligned_vector<double> w_fused(n, 0.0);

  // The split serial apply is the oracle for every (fused, threads) cell.
  system.set_threads(1);
  system.set_fused(false);
  system.apply(std::span<const double>(u.data(), n), std::span<double>(w_split.data(), n));

  system.set_fused(true);
  for (const int threads : {1, 2, 4}) {
    system.set_threads(threads);
    std::fill(w_fused.begin(), w_fused.end(), 0.0);
    system.apply(std::span<const double>(u.data(), n), std::span<double>(w_fused.data(), n));
    for (std::size_t p = 0; p < n; ++p) {
      ASSERT_EQ(w_fused[p], w_split[p])
          << kernels::ax_variant_name(variant) << " dof " << p << " at " << threads
          << " threads";
    }
  }
}

TEST_P(FusedParity, UnmaskedApplyIsBitwiseEqualToSplit) {
  const auto [degree, variant, deformation] = GetParam();
  const sem::Mesh mesh = make_mesh(degree, deformation);
  PoissonSystem system(mesh);
  system.set_ax_variant(variant);

  const std::size_t n = system.n_local();
  const aligned_vector<double> u = random_field(n, 131 + static_cast<std::uint64_t>(degree));
  aligned_vector<double> w_split(n, 0.0);
  aligned_vector<double> w_fused(n, 0.0);

  system.set_fused(false);
  system.apply_unmasked(std::span<const double>(u.data(), n),
                        std::span<double>(w_split.data(), n));
  system.set_fused(true);
  system.set_threads(4);
  system.apply_unmasked(std::span<const double>(u.data(), n),
                        std::span<double>(w_fused.data(), n));
  for (std::size_t p = 0; p < n; ++p) {
    ASSERT_EQ(w_fused[p], w_split[p]) << "dof " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Degrees3To9, FusedParity,
    ::testing::Combine(::testing::Values(3, 4, 5, 6, 7, 8, 9),
                       ::testing::ValuesIn(kernels::kAllAxVariants),
                       ::testing::Values(sem::Deformation::kSine,
                                         sem::Deformation::kTwist)),
    [](const ::testing::TestParamInfo<FusedCase>& tpi) {
      return std::string("N") + std::to_string(std::get<0>(tpi.param)) + "_" +
             kernels::ax_variant_name(std::get<1>(tpi.param)) + "_" +
             (std::get<2>(tpi.param) == sem::Deformation::kSine ? "sine" : "twist");
    });

/// One full CG solve; `fused` and `threads` select the operator path.
CgResult run_cg(bool fused, int threads, std::vector<double>* history,
                aligned_vector<double>* solution) {
  sem::BoxMeshSpec spec;
  spec.degree = 6;
  spec.nelx = spec.nely = spec.nelz = 3;
  spec.deformation = sem::Deformation::kTwist;
  spec.deformation_amplitude = 0.03;
  const sem::Mesh mesh = sem::box_mesh(spec);
  PoissonSystem system(mesh);
  system.set_fused(fused);
  system.set_threads(threads);

  const std::size_t n = system.n_local();
  aligned_vector<double> f(n);
  system.sample(
      [](double x, double y, double z) {
        return 3.0 * kPi * kPi * std::sin(kPi * x) * std::sin(kPi * y) *
               std::sin(kPi * z);
      },
      std::span<double>(f.data(), n));
  aligned_vector<double> b(n);
  system.assemble_rhs(std::span<const double>(f.data(), n),
                      std::span<double>(b.data(), n));

  CgOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 400;
  options.use_jacobi = true;
  options.record_history = true;
  options.threads = threads;

  solution->assign(n, 0.0);
  const CgResult r = solve_cg(system, std::span<const double>(b.data(), n),
                              std::span<double>(solution->data(), n), options);
  *history = r.residual_history;
  return r;
}

TEST(FusedCg, RethreadingTheFusedPathIsBitwiseDeterministic) {
  std::vector<double> serial_history;
  aligned_vector<double> serial_x;
  const CgResult serial = run_cg(/*fused=*/true, 1, &serial_history, &serial_x);
  ASSERT_TRUE(serial.converged);

  for (const int threads : {2, 4, 0}) {  // 0 = all hardware threads
    std::vector<double> history;
    aligned_vector<double> x;
    const CgResult r = run_cg(/*fused=*/true, threads, &history, &x);
    ASSERT_EQ(r.iterations, serial.iterations) << threads << " threads";
    ASSERT_EQ(history.size(), serial_history.size());
    for (std::size_t i = 0; i < history.size(); ++i) {
      ASSERT_EQ(history[i], serial_history[i])
          << "iteration " << i << " at " << threads << " threads";
    }
    for (std::size_t p = 0; p < x.size(); ++p) {
      ASSERT_EQ(x[p], serial_x[p]) << "solution dof " << p;
    }
  }
}

TEST(FusedCg, FusedAndSplitSolvesAreBitwiseEqual) {
  // The whole Krylov iteration — not just one apply — must be unchanged by
  // the fusion: identical residual history, iterate for iterate.
  std::vector<double> split_history, fused_history;
  aligned_vector<double> split_x, fused_x;
  const CgResult split = run_cg(/*fused=*/false, 2, &split_history, &split_x);
  const CgResult fused = run_cg(/*fused=*/true, 2, &fused_history, &fused_x);

  ASSERT_TRUE(split.converged);
  ASSERT_EQ(fused.iterations, split.iterations);
  ASSERT_EQ(fused_history.size(), split_history.size());
  for (std::size_t i = 0; i < fused_history.size(); ++i) {
    ASSERT_EQ(fused_history[i], split_history[i]) << "iteration " << i;
  }
  for (std::size_t p = 0; p < fused_x.size(); ++p) {
    ASSERT_EQ(fused_x[p], split_x[p]) << "solution dof " << p;
  }
}

TEST(FusedOperator, CustomLocalOperatorFallsBackToSplitPath) {
  // Installing a custom element operator must bypass the fused sweep (it
  // cannot run through the engine's variant dispatch) yet keep working.
  const sem::Mesh mesh = make_mesh(4, sem::Deformation::kSine);
  PoissonSystem split_system(mesh);
  PoissonSystem custom_system(mesh);
  custom_system.set_local_operator(
      [&custom_system](std::span<const double> u, std::span<double> w) {
        // The default engine body, reached through the custom-operator seam.
        kernels::ax_run(kernels::AxVariant::kFixed,
                        [&] {
                          kernels::AxArgs args;
                          args.u = u;
                          args.w = w;
                          args.g = std::span<const double>(
                              custom_system.geom().g.data(), custom_system.geom().g.size());
                          args.dx = std::span<const double>(
                              custom_system.ref().deriv().d.data(),
                              custom_system.ref().deriv().d.size());
                          args.dxt = std::span<const double>(
                              custom_system.ref().deriv().dt.data(),
                              custom_system.ref().deriv().dt.size());
                          args.n1d = custom_system.ref().n1d();
                          args.n_elements = custom_system.geom().n_elements;
                          return args;
                        }());
      });

  const std::size_t n = split_system.n_local();
  const aligned_vector<double> u = random_field(n, 5);
  aligned_vector<double> w_default(n, 0.0);
  aligned_vector<double> w_custom(n, 0.0);
  split_system.apply(std::span<const double>(u.data(), n),
                     std::span<double>(w_default.data(), n));
  custom_system.apply(std::span<const double>(u.data(), n),
                      std::span<double>(w_custom.data(), n));
  for (std::size_t p = 0; p < n; ++p) {
    ASSERT_EQ(w_custom[p], w_default[p]) << "dof " << p;
  }
}

}  // namespace
}  // namespace semfpga::solver
