#include "solver/gather_scatter.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace semfpga::solver {
namespace {

sem::Mesh make_mesh(int degree, int nel = 2) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = nel;
  return sem::box_mesh(spec);
}

TEST(GatherScatter, MultiplicityOfCornerSharedNodes) {
  // On a 2x2x2 element mesh the centre vertex is shared by 8 elements.
  const sem::Mesh mesh = make_mesh(2);
  const GatherScatter gs(mesh);
  double max_mult = 0.0;
  for (double m : gs.multiplicity()) {
    max_mult = std::max(max_mult, m);
  }
  EXPECT_DOUBLE_EQ(max_mult, 8.0);
}

TEST(GatherScatter, UnsharedNodesHaveMultiplicityOne) {
  // A node has multiplicity 1 iff it avoids every internal interface plane.
  // Per dimension the 2x2x2-element degree-3 mesh has a 7-node lattice with
  // one internal plane, leaving 6 non-shared indices: 6^3 = 216 nodes.
  const sem::Mesh mesh = make_mesh(3);
  const GatherScatter gs(mesh);
  long ones = 0;
  for (double m : gs.multiplicity()) {
    if (m == 1.0) {
      ++ones;
    }
  }
  EXPECT_EQ(ones, 216);
}

TEST(GatherScatter, ScatterOfOnesGivesMultiplicity) {
  const sem::Mesh mesh = make_mesh(2);
  const GatherScatter gs(mesh);
  std::vector<double> local(gs.n_local(), 1.0);
  std::vector<double> global(gs.n_global(), -1.0);
  gs.scatter_add(local, global);
  // Gathering the scattered ones returns each node's multiplicity.
  std::vector<double> back(gs.n_local());
  gs.gather(global, back);
  for (std::size_t p = 0; p < back.size(); ++p) {
    EXPECT_DOUBLE_EQ(back[p], gs.multiplicity()[p]);
  }
}

TEST(GatherScatter, QqtOnContinuousFieldScalesByMultiplicity) {
  const sem::Mesh mesh = make_mesh(3);
  const GatherScatter gs(mesh);
  // Build a continuous field by gathering a random global vector.
  SplitMix64 rng(5);
  std::vector<double> global(gs.n_global());
  for (double& v : global) {
    v = rng.uniform(-1.0, 1.0);
  }
  std::vector<double> local(gs.n_local());
  gs.gather(global, local);
  std::vector<double> qqt_local = local;
  gs.qqt(qqt_local);
  for (std::size_t p = 0; p < local.size(); ++p) {
    ASSERT_NEAR(qqt_local[p], gs.multiplicity()[p] * local[p], 1e-12);
  }
}

TEST(GatherScatter, QqtOutputIsContinuous) {
  const sem::Mesh mesh = make_mesh(2);
  const GatherScatter gs(mesh);
  SplitMix64 rng(6);
  std::vector<double> local(gs.n_local());
  for (double& v : local) {
    v = rng.uniform(-1.0, 1.0);
  }
  gs.qqt(local);
  // All local copies of a global DOF must agree after QQ^T.
  std::vector<double> value(gs.n_global(), 0.0);
  std::vector<char> seen(gs.n_global(), 0);
  for (std::size_t p = 0; p < local.size(); ++p) {
    const auto id = static_cast<std::size_t>(gs.ids()[p]);
    if (seen[id] == 0) {
      value[id] = local[p];
      seen[id] = 1;
    } else {
      ASSERT_DOUBLE_EQ(local[p], value[id]);
    }
  }
}

TEST(GatherScatter, WeightedDotEqualsGlobalDot) {
  // sum_local a*b/mult == sum_global a*b for continuous fields — the
  // property Nekbone's glsc3 relies on.
  const sem::Mesh mesh = make_mesh(3);
  const GatherScatter gs(mesh);
  SplitMix64 rng(7);
  std::vector<double> ga(gs.n_global()), gb(gs.n_global());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    ga[i] = rng.uniform(-1.0, 1.0);
    gb[i] = rng.uniform(-1.0, 1.0);
  }
  std::vector<double> la(gs.n_local()), lb(gs.n_local());
  gs.gather(ga, la);
  gs.gather(gb, lb);

  double global_dot = 0.0;
  for (std::size_t i = 0; i < ga.size(); ++i) {
    global_dot += ga[i] * gb[i];
  }
  double weighted = 0.0;
  const auto& c = gs.inv_multiplicity();
  for (std::size_t p = 0; p < la.size(); ++p) {
    weighted += la[p] * lb[p] * c[p];
  }
  EXPECT_NEAR(weighted, global_dot, 1e-10 * std::abs(global_dot));
}

TEST(GatherScatter, SizeChecks) {
  const sem::Mesh mesh = make_mesh(1);
  const GatherScatter gs(mesh);
  std::vector<double> wrong(3, 0.0);
  std::vector<double> global(gs.n_global(), 0.0);
  EXPECT_THROW(gs.scatter_add(wrong, global), std::invalid_argument);
  std::vector<double> local(gs.n_local(), 0.0);
  EXPECT_THROW(gs.gather(wrong, local), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::solver
