#include "solver/lifting.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace semfpga::solver {
namespace {

constexpr double kPi = 3.14159265358979323846;

sem::Mesh make_mesh(int degree, int nel, sem::Deformation def) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = nel;
  spec.deformation = def;
  spec.deformation_amplitude = 0.04;
  return sem::box_mesh(spec);
}

double patch_error(int degree, sem::Deformation def) {
  const sem::Mesh mesh = make_mesh(degree, 2, def);
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();

  auto linear = [](double x, double y, double z) {
    return 0.7 + 2.0 * x - 1.3 * y + 0.25 * z;
  };
  aligned_vector<double> f(n, 0.0);  // harmonic: zero forcing
  aligned_vector<double> u(n, 0.0);
  CgOptions options;
  options.tolerance = 1e-13;
  options.max_iterations = 800;
  const LiftedSolveResult r = solve_dirichlet(
      system, std::span<const double>(f.data(), n), linear,
      std::span<double>(u.data(), n), options);
  EXPECT_TRUE(r.cg.converged);

  aligned_vector<double> exact(n);
  system.sample(linear, std::span<double>(exact.data(), n));
  double err = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    err = std::max(err, std::abs(u[p] - exact[p]));
  }
  return err;
}

TEST(PatchTest, AffineMeshReproducesLinearsExactly) {
  // The classic FEM patch test: on affine elements the quadrature is
  // exact and the linear field is reproduced to solver tolerance.
  EXPECT_LT(patch_error(3, sem::Deformation::kNone), 1e-9);
}

TEST(PatchTest, CurvedMeshesCommitOnlyASpectrallySmallCrime) {
  // On curved (non-polynomial-map) isoparametric elements GLL quadrature
  // under-integrates the rational geometric factors: the patch test holds
  // only up to a variational crime that decays spectrally with N.
  const double sine3 = patch_error(3, sem::Deformation::kSine);
  const double twist3 = patch_error(3, sem::Deformation::kTwist);
  EXPECT_LT(sine3, 1e-4);
  EXPECT_LT(twist3, 1e-4);
  const double twist6 = patch_error(6, sem::Deformation::kTwist);
  EXPECT_LT(twist6, 0.05 * twist3);  // spectral decay of the crime
}

TEST(Lifting, QuadraticHarmonicIsExactFromDegreeTwo) {
  // u = x^2 - y^2 is harmonic; representable at N >= 2, so the lifted
  // solve must reproduce it exactly.
  const sem::Mesh mesh = make_mesh(3, 2, sem::Deformation::kNone);
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  auto quad = [](double x, double y, double) { return x * x - y * y; };
  aligned_vector<double> f(n, 0.0), u(n, 0.0);
  CgOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 500;
  (void)solve_dirichlet(system, std::span<const double>(f.data(), n), quad,
                        std::span<double>(u.data(), n), options);
  aligned_vector<double> exact(n);
  system.sample(quad, std::span<double>(exact.data(), n));
  double err = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    err = std::max(err, std::abs(u[p] - exact[p]));
  }
  EXPECT_LT(err, 1e-9);
}

TEST(Lifting, ReducesToMaskedSolveForHomogeneousBc) {
  // With g = 0, the lifted solve equals the plain masked solve.
  const sem::Mesh mesh = make_mesh(4, 2, sem::Deformation::kNone);
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();

  aligned_vector<double> f(n);
  system.sample(
      [](double x, double y, double z) {
        return 3.0 * kPi * kPi * std::sin(kPi * x) * std::sin(kPi * y) *
               std::sin(kPi * z);
      },
      std::span<double>(f.data(), n));

  CgOptions options;
  options.tolerance = 1e-11;
  options.max_iterations = 500;

  aligned_vector<double> u_lift(n, 0.0);
  (void)solve_dirichlet(system, std::span<const double>(f.data(), n),
                        [](double, double, double) { return 0.0; },
                        std::span<double>(u_lift.data(), n), options);

  aligned_vector<double> b(n), u_plain(n, 0.0);
  system.assemble_rhs(std::span<const double>(f.data(), n), std::span<double>(b.data(), n));
  (void)solve_cg(system, std::span<const double>(b.data(), n),
                 std::span<double>(u_plain.data(), n), options);

  for (std::size_t p = 0; p < n; ++p) {
    ASSERT_NEAR(u_lift[p], u_plain[p], 1e-10);
  }
}

TEST(Lifting, BoundaryValuesAreExactlyG) {
  const sem::Mesh mesh = make_mesh(3, 2, sem::Deformation::kSine);
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  auto g = [](double x, double y, double z) { return std::sin(x + 2.0 * y - z); };
  aligned_vector<double> f(n, 1.0), u(n, 0.0);
  CgOptions options;
  options.max_iterations = 50;  // boundary exactness is independent of CG
  (void)solve_dirichlet(system, std::span<const double>(f.data(), n), g,
                        std::span<double>(u.data(), n), options);
  for (std::size_t p = 0; p < n; ++p) {
    if (system.mask()[p] == 0.0) {
      const double expected = g(mesh.x()[p], mesh.y()[p], mesh.z()[p]);
      ASSERT_DOUBLE_EQ(u[p], expected);
    }
  }
}

TEST(Lifting, RejectsMissingBoundaryFunction) {
  const sem::Mesh mesh = make_mesh(2, 1, sem::Deformation::kNone);
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  aligned_vector<double> f(n, 0.0), u(n, 0.0);
  EXPECT_THROW((void)solve_dirichlet(system, std::span<const double>(f.data(), n),
                                     nullptr, std::span<double>(u.data(), n)),
               std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::solver
