#include "solver/chebyshev.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "solver/cg.hpp"

namespace semfpga::solver {
namespace {

sem::Mesh make_mesh(int degree, int nel) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = nel;
  return sem::box_mesh(spec);
}

/// Builds a continuous masked random vector.
aligned_vector<double> random_field(const PoissonSystem& system, std::uint64_t seed) {
  const std::size_t n = system.n_local();
  aligned_vector<double> v(n);
  SplitMix64 rng(seed);
  std::vector<double> global(system.gs().n_global());
  for (double& g : global) {
    g = rng.uniform(-1.0, 1.0);
  }
  system.gs().gather(global, std::span<double>(v.data(), n));
  for (std::size_t p = 0; p < n; ++p) {
    v[p] *= system.mask()[p];
  }
  return v;
}

TEST(PowerIteration, EstimateIsStableAndPositive) {
  const sem::Mesh mesh = make_mesh(4, 2);
  const PoissonSystem system(mesh);
  const double l1 = estimate_lambda_max(system, 20, 1);
  const double l2 = estimate_lambda_max(system, 40, 2);
  EXPECT_GT(l1, 0.0);
  // More iterations (different seed) must agree within a few percent.
  EXPECT_NEAR(l1 / l2, 1.0, 0.05);
}

TEST(PowerIteration, BoundsRandomRayleighQuotients) {
  // lambda_max must dominate the Rayleigh quotient of any vector.
  const sem::Mesh mesh = make_mesh(3, 2);
  const PoissonSystem system(mesh);
  const double lmax = estimate_lambda_max(system, 40);
  const std::size_t n = system.n_local();
  aligned_vector<double> av(n), dv(n);
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    const auto v = random_field(system, seed);
    system.apply(std::span<const double>(v.data(), n), std::span<double>(av.data(), n));
    for (std::size_t p = 0; p < n; ++p) {
      dv[p] = system.jacobi_diagonal()[p] * v[p];
    }
    const double rq = system.weighted_dot(std::span<const double>(v.data(), n),
                                          std::span<const double>(av.data(), n)) /
                      system.weighted_dot(std::span<const double>(v.data(), n),
                                          std::span<const double>(dv.data(), n));
    EXPECT_LE(rq, lmax * 1.02) << "seed " << seed;
  }
}

TEST(Chebyshev, PreconditionerIsSymmetric) {
  // (r1, P^{-1} r2)_c == (r2, P^{-1} r1)_c — required for CG.
  const sem::Mesh mesh = make_mesh(3, 2);
  const PoissonSystem system(mesh);
  const ChebyshevPreconditioner precond(system, 4);
  const std::size_t n = system.n_local();
  const auto r1 = random_field(system, 11);
  const auto r2 = random_field(system, 12);
  aligned_vector<double> z1(n), z2(n);
  precond.apply(std::span<const double>(r1.data(), n), std::span<double>(z1.data(), n));
  precond.apply(std::span<const double>(r2.data(), n), std::span<double>(z2.data(), n));
  const double a = system.weighted_dot(std::span<const double>(r1.data(), n),
                                       std::span<const double>(z2.data(), n));
  const double b = system.weighted_dot(std::span<const double>(r2.data(), n),
                                       std::span<const double>(z1.data(), n));
  EXPECT_NEAR(a, b, 1e-10 * std::max(std::abs(a), 1.0));
}

TEST(Chebyshev, PreconditionerIsPositiveDefinite) {
  const sem::Mesh mesh = make_mesh(3, 2);
  const PoissonSystem system(mesh);
  const ChebyshevPreconditioner precond(system, 3);
  const std::size_t n = system.n_local();
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const auto r = random_field(system, seed);
    aligned_vector<double> z(n);
    precond.apply(std::span<const double>(r.data(), n), std::span<double>(z.data(), n));
    EXPECT_GT(system.weighted_dot(std::span<const double>(r.data(), n),
                                  std::span<const double>(z.data(), n)),
              0.0)
        << "seed " << seed;
  }
}

TEST(Chebyshev, HigherOrderIsABetterSolverPerApplication) {
  // One application of an order-k smoother reduces the residual of A z = r
  // roughly geometrically in k.  Low orders are non-monotone (the short
  // polynomial overshoots mid-spectrum), so compare well-separated orders.
  const sem::Mesh mesh = make_mesh(3, 2);
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();
  const auto r = random_field(system, 33);
  double first = 0.0;
  double prev = 1e300;
  for (int order : {1, 6, 12}) {
    const ChebyshevPreconditioner precond(system, order);
    aligned_vector<double> z(n), az(n);
    precond.apply(std::span<const double>(r.data(), n), std::span<double>(z.data(), n));
    system.apply(std::span<const double>(z.data(), n), std::span<double>(az.data(), n));
    aligned_vector<double> res(n);
    for (std::size_t p = 0; p < n; ++p) {
      res[p] = r[p] - az[p];
    }
    const double norm = std::sqrt(std::abs(system.weighted_dot(
        std::span<const double>(res.data(), n), std::span<const double>(res.data(), n))));
    EXPECT_LT(norm, prev) << "order " << order;
    if (order == 1) {
      first = norm;
    }
    prev = norm;
  }
  EXPECT_LT(prev, 0.1 * first);  // order 12 crushes the residual
}

TEST(Chebyshev, AcceleratesCgOverJacobi) {
  const sem::Mesh mesh = make_mesh(4, 3);
  const PoissonSystem system(mesh);
  const std::size_t n = system.n_local();

  // Spectrum-rich RHS.
  aligned_vector<double> f(n), b(n);
  system.sample(
      [](double x, double y, double z) {
        return std::sin(23.0 * x) + std::cos(19.0 * y * z) + x * x - y;
      },
      std::span<double>(f.data(), n));
  system.assemble_rhs(std::span<const double>(f.data(), n), std::span<double>(b.data(), n));

  auto iterations = [&](const CgOptions& options) {
    aligned_vector<double> x(n, 0.0);
    const CgResult r = solve_cg(system, std::span<const double>(b.data(), n),
                                std::span<double>(x.data(), n), options);
    EXPECT_TRUE(r.converged);
    return r.iterations;
  };

  CgOptions jacobi;
  jacobi.tolerance = 1e-10;
  jacobi.max_iterations = 600;
  CgOptions cheby = jacobi;
  const ChebyshevPreconditioner precond(system, 4);
  cheby.preconditioner = [&precond](std::span<const double> r, std::span<double> z) {
    precond.apply(r, z);
  };

  const int it_jacobi = iterations(jacobi);
  const int it_cheby = iterations(cheby);
  // Each Chebyshev application costs ~4 operator applies, so it must cut
  // the iteration count by well over 2x to be interesting — it does.
  EXPECT_LT(it_cheby * 2, it_jacobi);
}

TEST(Chebyshev, RejectsBadParameters) {
  const sem::Mesh mesh = make_mesh(2, 1);
  const PoissonSystem system(mesh);
  EXPECT_THROW(ChebyshevPreconditioner(system, 0), std::invalid_argument);
  EXPECT_THROW(ChebyshevPreconditioner(system, 3, 10.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)estimate_lambda_max(system, 0), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::solver
