#include "solver/partition.hpp"

#include <gtest/gtest.h>

namespace semfpga::solver {
namespace {

sem::BoxMeshSpec spec_of(int degree, int nelx, int nely, int nelz) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = nelx;
  spec.nely = nely;
  spec.nelz = nelz;
  return spec;
}

TEST(Partition, CoversEveryLayerExactlyOnce) {
  const SlabPartition part = partition_slabs(spec_of(7, 4, 4, 13), 4);
  int z = 0;
  std::int64_t total = 0;
  for (const RankSlab& r : part.ranks) {
    EXPECT_EQ(r.z_begin, z);
    EXPECT_GT(r.z_end, r.z_begin);
    z = r.z_end;
    total += r.n_elements;
  }
  EXPECT_EQ(z, 13);
  EXPECT_EQ(total, 4LL * 4 * 13);
}

TEST(Partition, RemainderLayersGoToTheFirstRanks) {
  const SlabPartition part = partition_slabs(spec_of(3, 2, 2, 10), 4);
  // 10 layers over 4 ranks: 3, 3, 2, 2.
  EXPECT_EQ(part.ranks[0].z_end - part.ranks[0].z_begin, 3);
  EXPECT_EQ(part.ranks[1].z_end - part.ranks[1].z_begin, 3);
  EXPECT_EQ(part.ranks[2].z_end - part.ranks[2].z_begin, 2);
  EXPECT_EQ(part.ranks[3].z_end - part.ranks[3].z_begin, 2);
  EXPECT_EQ(part.max_elements(), 3LL * 2 * 2);
}

TEST(Partition, PlaneDofsMatchTheGllLattice) {
  const SlabPartition part = partition_slabs(spec_of(7, 4, 6, 8), 2);
  // (4*7+1)(6*7+1) = 29 * 43.
  EXPECT_EQ(part.plane_dofs(), 29LL * 43);
}

TEST(Partition, HaloCountsByPosition) {
  const SlabPartition part = partition_slabs(spec_of(2, 3, 3, 6), 3);
  const std::int64_t plane = part.plane_dofs();
  EXPECT_EQ(part.ranks[0].halo_dofs, plane);      // one neighbour
  EXPECT_EQ(part.ranks[1].halo_dofs, 2 * plane);  // two neighbours
  EXPECT_EQ(part.ranks[2].halo_dofs, plane);
  EXPECT_EQ(part.max_halo_bytes(), 2 * plane * 8);
}

TEST(Partition, SingleRankHasNoHalo) {
  const SlabPartition part = partition_slabs(spec_of(5, 2, 2, 4), 1);
  ASSERT_EQ(part.ranks.size(), 1u);
  EXPECT_EQ(part.ranks[0].halo_dofs, 0);
  EXPECT_EQ(part.max_halo_bytes(), 0);
}

TEST(Partition, RejectsInvalidRankCounts) {
  EXPECT_THROW((void)partition_slabs(spec_of(3, 2, 2, 4), 0), std::invalid_argument);
  EXPECT_THROW((void)partition_slabs(spec_of(3, 2, 2, 4), 5), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::solver
