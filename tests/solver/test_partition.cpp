#include "solver/partition.hpp"

#include <set>

#include <gtest/gtest.h>

namespace semfpga::solver {
namespace {

sem::BoxMeshSpec spec_of(int degree, int nelx, int nely, int nelz) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = nelx;
  spec.nely = nely;
  spec.nelz = nelz;
  return spec;
}

TEST(Partition, CoversEveryLayerExactlyOnce) {
  const SlabPartition part = partition_slabs(spec_of(7, 4, 4, 13), 4);
  int z = 0;
  std::int64_t total = 0;
  for (const RankSlab& r : part.ranks) {
    EXPECT_EQ(r.z_begin, z);
    EXPECT_GT(r.z_end, r.z_begin);
    z = r.z_end;
    total += r.n_elements;
  }
  EXPECT_EQ(z, 13);
  EXPECT_EQ(total, 4LL * 4 * 13);
}

TEST(Partition, RemainderLayersGoToTheFirstRanks) {
  const SlabPartition part = partition_slabs(spec_of(3, 2, 2, 10), 4);
  // 10 layers over 4 ranks: 3, 3, 2, 2.
  EXPECT_EQ(part.ranks[0].z_end - part.ranks[0].z_begin, 3);
  EXPECT_EQ(part.ranks[1].z_end - part.ranks[1].z_begin, 3);
  EXPECT_EQ(part.ranks[2].z_end - part.ranks[2].z_begin, 2);
  EXPECT_EQ(part.ranks[3].z_end - part.ranks[3].z_begin, 2);
  EXPECT_EQ(part.max_elements(), 3LL * 2 * 2);
}

TEST(Partition, PlaneDofsMatchTheGllLattice) {
  const SlabPartition part = partition_slabs(spec_of(7, 4, 6, 8), 2);
  // (4*7+1)(6*7+1) = 29 * 43.
  EXPECT_EQ(part.plane_dofs(), 29LL * 43);
}

TEST(Partition, HaloCountsByPosition) {
  const SlabPartition part = partition_slabs(spec_of(2, 3, 3, 6), 3);
  const std::int64_t plane = part.plane_dofs();
  EXPECT_EQ(part.ranks[0].halo_dofs, plane);      // one neighbour
  EXPECT_EQ(part.ranks[1].halo_dofs, 2 * plane);  // two neighbours
  EXPECT_EQ(part.ranks[2].halo_dofs, plane);
  EXPECT_EQ(part.max_halo_bytes(), 2 * plane * 8);
}

TEST(Partition, SingleRankHasNoHalo) {
  const SlabPartition part = partition_slabs(spec_of(5, 2, 2, 4), 1);
  ASSERT_EQ(part.ranks.size(), 1u);
  EXPECT_EQ(part.ranks[0].halo_dofs, 0);
  EXPECT_EQ(part.max_halo_bytes(), 0);
}

TEST(Partition, RejectsInvalidRankCounts) {
  EXPECT_THROW((void)partition_slabs(spec_of(3, 2, 2, 4), 0), std::invalid_argument);
  EXPECT_THROW((void)partition_slabs(spec_of(3, 2, 2, 4), 5), std::invalid_argument);
}

TEST(Partition, RemainderLayersAlwaysLandOnTheFirstRanks) {
  // Exhaustive small sweep: every (layers, ranks) pair keeps slab sizes
  // within one layer of each other, larger slabs first.
  for (int nelz = 1; nelz <= 9; ++nelz) {
    for (int ranks = 1; ranks <= nelz; ++ranks) {
      const SlabPartition part = partition_slabs(spec_of(2, 2, 2, nelz), ranks);
      ASSERT_EQ(static_cast<int>(part.ranks.size()), ranks);
      int covered = 0;
      for (int r = 0; r < ranks; ++r) {
        const int layers = part.ranks[r].z_end - part.ranks[r].z_begin;
        const int expected = nelz / ranks + (r < nelz % ranks ? 1 : 0);
        ASSERT_EQ(layers, expected) << "nelz " << nelz << " ranks " << ranks
                                    << " rank " << r;
        covered += layers;
      }
      ASSERT_EQ(covered, nelz);
    }
  }
}

TEST(Partition, OneRankPerLayerGivesSingleLayerSlabs) {
  const SlabPartition part = partition_slabs(spec_of(4, 3, 2, 6), 6);
  for (const RankSlab& r : part.ranks) {
    EXPECT_EQ(r.z_end - r.z_begin, 1);
    EXPECT_EQ(r.n_elements, 3LL * 2);
    const int interfaces = (r.rank > 0 ? 1 : 0) + (r.rank < 5 ? 1 : 0);
    EXPECT_EQ(r.halo_dofs, interfaces * part.plane_dofs());
  }
}

TEST(Partition, SingleRankSlabHasZeroHaloDofsEvenWhenLayered) {
  const SlabPartition part = partition_slabs(spec_of(3, 4, 4, 7), 1);
  ASSERT_EQ(part.ranks.size(), 1u);
  EXPECT_EQ(part.ranks[0].halo_dofs, 0);
  EXPECT_EQ(part.ranks[0].n_elements, 4LL * 4 * 7);
}

TEST(Partition, HaloAndPlaneDofsMatchAMeshBuiltOracle) {
  // Count the interface-plane DOFs straight off the mesh's global ids: the
  // unique ids shared between the elements of adjacent z layers.
  const sem::BoxMeshSpec spec = spec_of(3, 2, 3, 5);
  const SlabPartition part = partition_slabs(spec, 2);  // layers 3 | 2
  const sem::Mesh mesh = sem::box_mesh(spec);

  const std::size_t ppe = mesh.points_per_element();
  const std::size_t per_layer = static_cast<std::size_t>(spec.nelx) * spec.nely;
  const int boundary_layer = part.ranks[0].z_end;  // first layer of rank 1
  std::set<std::int64_t> below;
  std::set<std::int64_t> shared;
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    const int layer = static_cast<int>(e / per_layer);
    for (std::size_t k = 0; k < ppe; ++k) {
      const std::int64_t id = mesh.global_id()[e * ppe + k];
      if (layer == boundary_layer - 1) {
        below.insert(id);
      }
    }
  }
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    const int layer = static_cast<int>(e / per_layer);
    for (std::size_t k = 0; k < ppe; ++k) {
      const std::int64_t id = mesh.global_id()[e * ppe + k];
      if (layer == boundary_layer && below.count(id) != 0) {
        shared.insert(id);
      }
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(shared.size()), part.plane_dofs());
  EXPECT_EQ(part.ranks[0].halo_dofs, part.plane_dofs());      // one interface
  EXPECT_EQ(part.ranks[1].halo_dofs, part.plane_dofs());      // one interface
  const SlabPartition three = partition_slabs(spec, 3);
  EXPECT_EQ(three.ranks[1].halo_dofs, 2 * three.plane_dofs());  // middle rank
}

}  // namespace
}  // namespace semfpga::solver
