/// Contract of the HelmholtzSystem (the BK5 solve workload):
///  * the fused Helmholtz sweep is *bitwise* identical to the split
///    helmholtz_run -> qqt -> mask path, for every engine variant, at
///    every thread count, masked and unmasked;
///  * lambda = 0 makes the system bitwise indistinguishable from
///    PoissonSystem (operator, diagonal, and a whole CG solve);
///  * the Jacobi diagonal picks up the assembled mass term;
///  * the CG solve converges spectrally on the manufactured solution and
///    is bitwise deterministic under re-threading;
///  * the Chebyshev smoother runs the Helmholtz operator through the same
///    Backend seam, fused vs split bitwise equal.

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sem/dense.hpp"
#include "solver/cg.hpp"
#include "solver/chebyshev.hpp"
#include "solver/helmholtz_system.hpp"

namespace semfpga::solver {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kLambda = 1.75;

sem::Mesh make_mesh(int degree, sem::Deformation def = sem::Deformation::kSine) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = 2;
  spec.deformation = def;
  spec.deformation_amplitude = 0.04;
  return sem::box_mesh(spec);
}

aligned_vector<double> random_field(std::size_t n, std::uint64_t seed) {
  aligned_vector<double> v(n);
  SplitMix64 rng(seed);
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0);
  }
  return v;
}

using FusedCase = std::tuple<int, kernels::AxVariant>;

class HelmholtzFusedParity : public ::testing::TestWithParam<FusedCase> {};

TEST_P(HelmholtzFusedParity, FusedApplyIsBitwiseEqualToSplitAtAnyThreadCount) {
  const auto [degree, variant] = GetParam();
  const sem::Mesh mesh = make_mesh(degree);
  HelmholtzSystem system(mesh, kLambda);
  system.set_ax_variant(variant);

  const std::size_t n = system.n_local();
  const aligned_vector<double> u =
      random_field(n, 211 + static_cast<std::uint64_t>(degree));
  aligned_vector<double> w_split(n, 0.0);
  aligned_vector<double> w_fused(n, 0.0);

  // The split serial apply is the oracle for every (fused, threads) cell.
  system.set_threads(1);
  system.set_fused(false);
  system.apply(std::span<const double>(u.data(), n),
               std::span<double>(w_split.data(), n));

  system.set_fused(true);
  for (const int threads : {1, 2, 4}) {
    system.set_threads(threads);
    std::fill(w_fused.begin(), w_fused.end(), 0.0);
    system.apply(std::span<const double>(u.data(), n),
                 std::span<double>(w_fused.data(), n));
    for (std::size_t p = 0; p < n; ++p) {
      ASSERT_EQ(w_fused[p], w_split[p])
          << kernels::ax_variant_name(variant) << " dof " << p << " at " << threads
          << " threads";
    }
  }
}

TEST_P(HelmholtzFusedParity, UnmaskedApplyIsBitwiseEqualToSplit) {
  const auto [degree, variant] = GetParam();
  const sem::Mesh mesh = make_mesh(degree);
  HelmholtzSystem system(mesh, kLambda);
  system.set_ax_variant(variant);

  const std::size_t n = system.n_local();
  const aligned_vector<double> u =
      random_field(n, 223 + static_cast<std::uint64_t>(degree));
  aligned_vector<double> w_split(n, 0.0);
  aligned_vector<double> w_fused(n, 0.0);

  system.set_fused(false);
  system.apply_unmasked(std::span<const double>(u.data(), n),
                        std::span<double>(w_split.data(), n));
  system.set_fused(true);
  system.set_threads(4);
  system.apply_unmasked(std::span<const double>(u.data(), n),
                        std::span<double>(w_fused.data(), n));
  for (std::size_t p = 0; p < n; ++p) {
    ASSERT_EQ(w_fused[p], w_split[p]) << "dof " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Degrees3To9, HelmholtzFusedParity,
    ::testing::Combine(::testing::Values(3, 5, 7, 9),
                       ::testing::ValuesIn(kernels::kAllAxVariants)),
    [](const ::testing::TestParamInfo<FusedCase>& tpi) {
      return std::string("N") + std::to_string(std::get<0>(tpi.param)) + "_" +
             kernels::ax_variant_name(std::get<1>(tpi.param));
    });

TEST(HelmholtzSystem, RejectsNegativeLambda) {
  const sem::Mesh mesh = make_mesh(3);
  EXPECT_THROW(HelmholtzSystem(mesh, -0.5), std::invalid_argument);
}

TEST(HelmholtzSystem, ReportsItsKindAndFlops) {
  const sem::Mesh mesh = make_mesh(3);
  HelmholtzSystem system(mesh, kLambda);
  EXPECT_EQ(system.operator_kind(), OperatorKind::kHelmholtz);
  EXPECT_STREQ(operator_kind_name(system.operator_kind()), "helmholtz");
  EXPECT_EQ(system.operator_flops(),
            kernels::helmholtz_flops(system.ref().n1d(), system.geom().n_elements));

  PoissonSystem poisson(mesh);
  EXPECT_EQ(poisson.operator_kind(), OperatorKind::kPoisson);
  EXPECT_EQ(poisson.operator_flops(),
            kernels::ax_flops(poisson.ref().n1d(), poisson.geom().n_elements));
}

TEST(HelmholtzSystem, LambdaZeroIsBitwiseThePoissonSystem) {
  const sem::Mesh mesh = make_mesh(5, sem::Deformation::kTwist);
  HelmholtzSystem helmholtz(mesh, 0.0);
  PoissonSystem poisson(mesh);

  const std::size_t n = poisson.n_local();
  ASSERT_EQ(helmholtz.n_local(), n);

  // Identical diagonal (the mass addend is skipped outright at zero)...
  for (std::size_t p = 0; p < n; ++p) {
    ASSERT_EQ(helmholtz.jacobi_diagonal()[p], poisson.jacobi_diagonal()[p]);
  }
  // ... and identical operator action, fused and split alike.
  const aligned_vector<double> u = random_field(n, 7);
  aligned_vector<double> w_h(n, 0.0), w_p(n, 0.0);
  for (const bool fused : {true, false}) {
    helmholtz.set_fused(fused);
    poisson.set_fused(fused);
    helmholtz.apply(std::span<const double>(u.data(), n),
                    std::span<double>(w_h.data(), n));
    poisson.apply(std::span<const double>(u.data(), n),
                  std::span<double>(w_p.data(), n));
    for (std::size_t p = 0; p < n; ++p) {
      ASSERT_EQ(w_h[p], w_p[p]) << "fused=" << fused << " dof " << p;
    }
  }
}

TEST(HelmholtzSystem, DiagonalPicksUpTheAssembledMassTerm) {
  const sem::Mesh mesh = make_mesh(4);
  HelmholtzSystem system(mesh, kLambda);

  // Rebuild the expectation with the same canonical machinery: per-element
  // stiffness diagonals plus lambda * mass, assembled by qqt, masked to 1.
  const std::size_t n = system.n_local();
  const std::size_t ppe = system.ref().points_per_element();
  aligned_vector<double> expected(n);
  for (std::size_t e = 0; e < system.geom().n_elements; ++e) {
    const auto d = sem::local_diagonal(system.ref(), system.geom(), e);
    for (std::size_t p = 0; p < ppe; ++p) {
      expected[e * ppe + p] = d[p];
    }
  }
  for (std::size_t p = 0; p < n; ++p) {
    expected[p] += kLambda * system.geom().mass[p];
  }
  system.gs().qqt(expected);
  for (std::size_t p = 0; p < n; ++p) {
    if (system.mask()[p] == 0.0) {
      expected[p] = 1.0;
    }
  }
  for (std::size_t p = 0; p < n; ++p) {
    ASSERT_EQ(system.jacobi_diagonal()[p], expected[p]) << "dof " << p;
  }

  // And the mass term strictly increases every unmasked diagonal entry
  // relative to the Poisson one (mass factors are positive).
  PoissonSystem poisson(mesh);
  for (std::size_t p = 0; p < n; ++p) {
    if (system.mask()[p] != 0.0) {
      ASSERT_GT(system.jacobi_diagonal()[p], poisson.jacobi_diagonal()[p]);
    }
  }
}

/// One full Helmholtz CG solve on the manufactured problem.
CgResult run_cg(double lambda, bool fused, int threads, std::vector<double>* history,
                aligned_vector<double>* solution) {
  sem::BoxMeshSpec spec;
  spec.degree = 6;
  spec.nelx = spec.nely = spec.nelz = 3;
  spec.deformation = sem::Deformation::kTwist;
  spec.deformation_amplitude = 0.03;
  const sem::Mesh mesh = sem::box_mesh(spec);
  HelmholtzSystem system(mesh, lambda);
  system.set_fused(fused);
  system.set_threads(threads);

  const std::size_t n = system.n_local();
  aligned_vector<double> f(n);
  system.sample(
      [lambda](double x, double y, double z) {
        return (3.0 * kPi * kPi + lambda) * std::sin(kPi * x) * std::sin(kPi * y) *
               std::sin(kPi * z);
      },
      std::span<double>(f.data(), n));
  aligned_vector<double> b(n);
  system.assemble_rhs(std::span<const double>(f.data(), n),
                      std::span<double>(b.data(), n));

  CgOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 400;
  options.use_jacobi = true;
  options.record_history = true;
  options.threads = threads;

  solution->assign(n, 0.0);
  const CgResult r = solve_cg(system, std::span<const double>(b.data(), n),
                              std::span<double>(solution->data(), n), options);
  *history = r.residual_history;
  return r;
}

TEST(HelmholtzCg, RethreadingTheFusedSolveIsBitwiseDeterministic) {
  std::vector<double> serial_history;
  aligned_vector<double> serial_x;
  const CgResult serial = run_cg(kLambda, /*fused=*/true, 1, &serial_history, &serial_x);
  ASSERT_TRUE(serial.converged);

  for (const int threads : {2, 4, 0}) {  // 0 = all hardware threads
    std::vector<double> history;
    aligned_vector<double> x;
    const CgResult r = run_cg(kLambda, /*fused=*/true, threads, &history, &x);
    ASSERT_EQ(r.iterations, serial.iterations) << threads << " threads";
    ASSERT_EQ(history.size(), serial_history.size());
    for (std::size_t i = 0; i < history.size(); ++i) {
      ASSERT_EQ(history[i], serial_history[i])
          << "iteration " << i << " at " << threads << " threads";
    }
    for (std::size_t p = 0; p < x.size(); ++p) {
      ASSERT_EQ(x[p], serial_x[p]) << "solution dof " << p;
    }
  }
}

TEST(HelmholtzCg, FusedAndSplitSolvesAreBitwiseEqual) {
  std::vector<double> split_history, fused_history;
  aligned_vector<double> split_x, fused_x;
  const CgResult split = run_cg(kLambda, /*fused=*/false, 2, &split_history, &split_x);
  const CgResult fused = run_cg(kLambda, /*fused=*/true, 2, &fused_history, &fused_x);

  ASSERT_TRUE(split.converged);
  ASSERT_EQ(fused.iterations, split.iterations);
  ASSERT_EQ(fused_history.size(), split_history.size());
  for (std::size_t i = 0; i < fused_history.size(); ++i) {
    ASSERT_EQ(fused_history[i], split_history[i]) << "iteration " << i;
  }
  for (std::size_t p = 0; p < fused_x.size(); ++p) {
    ASSERT_EQ(fused_x[p], split_x[p]) << "solution dof " << p;
  }
}

TEST(HelmholtzCg, ConvergesSpectrallyOnTheManufacturedSolution) {
  // -lap u + lambda u = (3 pi^2 + lambda) u with u the product of sines:
  // at degree 8 on 2^3 elements the nodal max error must be deep below any
  // h-refinement rate.
  sem::BoxMeshSpec spec;
  spec.degree = 8;
  spec.nelx = spec.nely = spec.nelz = 2;
  const sem::Mesh mesh = sem::box_mesh(spec);
  HelmholtzSystem system(mesh, kLambda);

  const std::size_t n = system.n_local();
  aligned_vector<double> f(n), b(n), x(n, 0.0);
  system.sample(
      [](double px, double py, double pz) {
        return (3.0 * kPi * kPi + kLambda) * std::sin(kPi * px) * std::sin(kPi * py) *
               std::sin(kPi * pz);
      },
      std::span<double>(f.data(), n));
  system.assemble_rhs(std::span<const double>(f.data(), n),
                      std::span<double>(b.data(), n));

  CgOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 2000;
  options.use_jacobi = true;
  const CgResult r = solve_cg(system, std::span<const double>(b.data(), n),
                              std::span<double>(x.data(), n), options);
  ASSERT_TRUE(r.converged);

  aligned_vector<double> exact(n);
  system.sample(
      [](double px, double py, double pz) {
        return std::sin(kPi * px) * std::sin(kPi * py) * std::sin(kPi * pz);
      },
      std::span<double>(exact.data(), n));
  double err = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    err = std::max(err, std::abs(x[p] - exact[p]));
  }
  EXPECT_LT(err, 1e-6);
}

TEST(HelmholtzChebyshev, FusedAndSplitPreconditionedSolvesAreBitwiseEqual) {
  // The smoother routes every apply through the Backend seam, so it must
  // inherit the Helmholtz fused/split parity wholesale — and the diagonal
  // it smooths with carries the mass term.
  const sem::Mesh mesh = make_mesh(5);
  auto run = [&](bool fused) {
    HelmholtzSystem system(mesh, kLambda);
    system.set_fused(fused);
    system.set_threads(2);
    const std::size_t n = system.n_local();
    aligned_vector<double> f(n), b(n), x(n, 0.0);
    system.sample(
        [](double px, double py, double pz) {
          return (3.0 * kPi * kPi + kLambda) * std::sin(kPi * px) *
                 std::sin(kPi * py) * std::sin(kPi * pz);
        },
        std::span<double>(f.data(), n));
    system.assemble_rhs(std::span<const double>(f.data(), n),
                        std::span<double>(b.data(), n));

    ChebyshevPreconditioner precond(system, /*order=*/3);
    CgOptions options;
    options.tolerance = 1e-10;
    options.max_iterations = 200;
    options.record_history = true;
    options.preconditioner = [&](std::span<const double> r, std::span<double> z) {
      precond.apply(r, z);
    };
    const CgResult r = solve_cg(system, std::span<const double>(b.data(), n),
                                std::span<double>(x.data(), n), options);
    return std::make_pair(r, std::move(x));
  };

  const auto [r_split, x_split] = run(false);
  const auto [r_fused, x_fused] = run(true);
  ASSERT_TRUE(r_split.converged);
  ASSERT_EQ(r_fused.iterations, r_split.iterations);
  ASSERT_EQ(r_fused.residual_history.size(), r_split.residual_history.size());
  for (std::size_t i = 0; i < r_fused.residual_history.size(); ++i) {
    ASSERT_EQ(r_fused.residual_history[i], r_split.residual_history[i])
        << "iteration " << i;
  }
  for (std::size_t p = 0; p < x_fused.size(); ++p) {
    ASSERT_EQ(x_fused[p], x_split[p]) << "dof " << p;
  }
}

}  // namespace
}  // namespace semfpga::solver
