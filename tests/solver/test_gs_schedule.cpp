/// Schedule-equivalence contract of the CSR gather-scatter: the
/// owner-computes sweeps must reproduce a naive scatter/gather oracle that
/// spells out the canonical summation order — ascending local position,
/// split at the z element layer boundary (below-layer fold + above-layer
/// fold, added once; the order the SPMD runtime's halo exchange reproduces
/// across rank boundaries) — and must be bitwise stable under re-threading.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "solver/gather_scatter.hpp"

namespace semfpga::solver {
namespace {

sem::Mesh make_mesh(int degree, int nel) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = nel;
  return sem::box_mesh(spec);
}

std::vector<double> random_local(const GatherScatter& gs, std::uint64_t seed) {
  std::vector<double> v(gs.n_local());
  SplitMix64 rng(seed);
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0);
  }
  return v;
}

/// Naive restatement of the canonical order: accumulate local copies in
/// local-position order into *per-layer* partials (positions are
/// element-major with z outermost, so each copy's layer is position /
/// dofs_per_layer), then global = below-layer partial + above-layer
/// partial.  Copies of one DOF span at most two adjacent layers.
struct NaiveOracle {
  explicit NaiveOracle(const GatherScatter& schedule) : gs(schedule) {}

  [[nodiscard]] std::vector<double> scatter_add(const std::vector<double>& local) const {
    std::vector<double> below(gs.n_global(), 0.0);
    std::vector<double> above(gs.n_global(), 0.0);
    std::vector<std::size_t> first_layer(gs.n_global(), SIZE_MAX);
    const auto& ids = gs.ids();
    for (std::size_t p = 0; p < ids.size(); ++p) {
      const auto g = static_cast<std::size_t>(ids[p]);
      const std::size_t layer = p / gs.dofs_per_layer();
      if (first_layer[g] == SIZE_MAX) {
        first_layer[g] = layer;
      }
      (layer == first_layer[g] ? below : above)[g] += local[p];
    }
    std::vector<double> global(gs.n_global(), 0.0);
    std::vector<int> spans_two(gs.n_global(), 0);
    for (std::size_t p = 0; p < ids.size(); ++p) {
      const auto g = static_cast<std::size_t>(ids[p]);
      spans_two[g] |= p / gs.dofs_per_layer() != first_layer[g] ? 1 : 0;
    }
    for (std::size_t g = 0; g < gs.n_global(); ++g) {
      global[g] = spans_two[g] != 0 ? below[g] + above[g] : below[g];
    }
    return global;
  }

  [[nodiscard]] std::vector<double> qqt(const std::vector<double>& local) const {
    const std::vector<double> global = scatter_add(local);
    std::vector<double> out(local.size());
    const auto& ids = gs.ids();
    for (std::size_t p = 0; p < ids.size(); ++p) {
      out[p] = global[static_cast<std::size_t>(ids[p])];
    }
    return out;
  }

  const GatherScatter& gs;
};

class GsSchedule : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GsSchedule, CsrStructureIsAPermutationSortedByGlobalId) {
  const auto [degree, nel] = GetParam();
  const sem::Mesh mesh = make_mesh(degree, nel);
  const GatherScatter gs(mesh);

  const auto& offsets = gs.gather_offsets();
  const auto& positions = gs.gather_positions();
  ASSERT_EQ(offsets.size(), gs.n_global() + 1);
  ASSERT_EQ(positions.size(), gs.n_local());
  EXPECT_EQ(offsets.front(), 0);
  EXPECT_EQ(static_cast<std::size_t>(offsets.back()), gs.n_local());

  // Every local position appears exactly once, filed under its global id.
  std::vector<int> seen(gs.n_local(), 0);
  for (std::size_t g = 0; g < gs.n_global(); ++g) {
    for (std::int64_t k = offsets[g]; k < offsets[g + 1]; ++k) {
      const auto p = static_cast<std::size_t>(positions[static_cast<std::size_t>(k)]);
      ASSERT_LT(p, gs.n_local());
      ASSERT_EQ(static_cast<std::size_t>(gs.ids()[p]), g);
      ++seen[p];
    }
  }
  for (std::size_t p = 0; p < gs.n_local(); ++p) {
    ASSERT_EQ(seen[p], 1) << "local position " << p;
  }
}

TEST_P(GsSchedule, ScatterAddMatchesNaiveOracle) {
  const auto [degree, nel] = GetParam();
  const sem::Mesh mesh = make_mesh(degree, nel);
  const GatherScatter gs(mesh);
  const NaiveOracle oracle(gs);

  const std::vector<double> local = random_local(gs, 123);
  const std::vector<double> want = oracle.scatter_add(local);
  std::vector<double> got(gs.n_global(), -1.0);  // stale values must be overwritten
  gs.scatter_add(local, got);
  for (std::size_t g = 0; g < gs.n_global(); ++g) {
    // CSR order sums copies of one DOF in ascending local position — the
    // oracle's order too, so this is exact, not approximate.
    ASSERT_EQ(got[g], want[g]) << "global dof " << g;
  }
}

TEST_P(GsSchedule, QqtMatchesNaiveOracleAndIsThreadCountStable) {
  const auto [degree, nel] = GetParam();
  const sem::Mesh mesh = make_mesh(degree, nel);
  GatherScatter gs(mesh);
  const NaiveOracle oracle(gs);

  const std::vector<double> local = random_local(gs, 321);
  const std::vector<double> want = oracle.qqt(local);

  for (const int threads : {1, 2, 4}) {
    gs.set_threads(threads);
    std::vector<double> inout = local;
    gs.qqt(inout);
    for (std::size_t p = 0; p < inout.size(); ++p) {
      ASSERT_EQ(inout[p], want[p]) << "dof " << p << " at " << threads << " threads";
    }
  }
}

TEST_P(GsSchedule, SharedCsrIsTheMultiRowSubsetOfTheFullSchedule) {
  const auto [degree, nel] = GetParam();
  const sem::Mesh mesh = make_mesh(degree, nel);
  const GatherScatter gs(mesh);

  const auto& offsets = gs.gather_offsets();
  const auto& positions = gs.gather_positions();
  const auto& s_offsets = gs.shared_offsets();
  const auto& s_positions = gs.shared_positions();
  ASSERT_EQ(s_offsets.size(), gs.n_shared_dofs() + 1);
  ASSERT_EQ(s_positions.size(), gs.n_shared_copies());

  // Walking the full CSR and keeping only rows with > 1 copy must replay
  // the shared CSR exactly, row for row and entry for entry — that order
  // equality is what makes the fused sweep bitwise identical to qqt.
  std::size_t s = 0;
  std::size_t slot = 0;
  for (std::size_t g = 0; g < gs.n_global(); ++g) {
    if (offsets[g + 1] - offsets[g] < 2) {
      continue;
    }
    ASSERT_LT(s, gs.n_shared_dofs());
    ASSERT_EQ(s_offsets[s + 1] - s_offsets[s], offsets[g + 1] - offsets[g]);
    for (std::int64_t k = offsets[g]; k < offsets[g + 1]; ++k, ++slot) {
      ASSERT_EQ(s_positions[slot], positions[static_cast<std::size_t>(k)]);
    }
    ++s;
  }
  EXPECT_EQ(s, gs.n_shared_dofs());
  EXPECT_EQ(slot, gs.n_shared_copies());
}

TEST_P(GsSchedule, SharedCsrCoversExactlyTheMultiplicityAboveOneDofs) {
  const auto [degree, nel] = GetParam();
  const sem::Mesh mesh = make_mesh(degree, nel);
  const GatherScatter gs(mesh);

  // Every shared-CSR entry names a multiplicity > 1 position, exactly once,
  // and together they cover all such positions — so the fused sweep's
  // surface pass touches each shared copy exactly once and nothing else.
  std::vector<int> seen(gs.n_local(), 0);
  for (const std::int64_t p64 : gs.shared_positions()) {
    const auto p = static_cast<std::size_t>(p64);
    ASSERT_LT(p, gs.n_local());
    ASSERT_GT(gs.multiplicity()[p], 1.0);
    ++seen[p];
  }
  std::size_t n_multi = 0;
  for (std::size_t p = 0; p < gs.n_local(); ++p) {
    const bool multi = gs.multiplicity()[p] > 1.0;
    n_multi += multi ? 1 : 0;
    ASSERT_EQ(seen[p], multi ? 1 : 0) << "local position " << p;
  }
  EXPECT_EQ(gs.n_shared_copies(), n_multi);
  EXPECT_LT(gs.n_shared_copies(), gs.n_local());  // a surface, not the volume
}

TEST_P(GsSchedule, SharedSplitsSitAtTheLayerBoundary) {
  const auto [degree, nel] = GetParam();
  const sem::Mesh mesh = make_mesh(degree, nel);
  const GatherScatter gs(mesh);

  const auto& offsets = gs.shared_offsets();
  const auto& positions = gs.shared_positions();
  const auto& splits = gs.shared_splits();
  ASSERT_EQ(splits.size(), gs.n_shared_dofs());
  const std::size_t per_layer = gs.dofs_per_layer();
  for (std::size_t s = 0; s < gs.n_shared_dofs(); ++s) {
    const std::int64_t begin = offsets[s];
    const std::int64_t split = splits[s];
    const std::int64_t end = offsets[s + 1];
    ASSERT_GT(split, begin);
    ASSERT_LE(split, end);
    // Everything before the split shares the first copy's layer; everything
    // after lies exactly one layer above (copies span at most two layers).
    const std::size_t layer0 =
        static_cast<std::size_t>(positions[static_cast<std::size_t>(begin)]) /
        per_layer;
    for (std::int64_t k = begin; k < split; ++k) {
      ASSERT_EQ(static_cast<std::size_t>(positions[static_cast<std::size_t>(k)]) /
                    per_layer,
                layer0);
    }
    for (std::int64_t k = split; k < end; ++k) {
      ASSERT_EQ(static_cast<std::size_t>(positions[static_cast<std::size_t>(k)]) /
                    per_layer,
                layer0 + 1);
    }
  }
}

TEST_P(GsSchedule, SharedPositions32MirrorsThe64BitSchedule) {
  const auto [degree, nel] = GetParam();
  const sem::Mesh mesh = make_mesh(degree, nel);
  const GatherScatter gs(mesh);

  // Every test mesh is far below the 2^31 local-DOF threshold, so the
  // 32-bit schedule must exist and agree entry for entry.
  const auto& p64 = gs.shared_positions();
  const auto& p32 = gs.shared_positions32();
  ASSERT_EQ(p32.size(), p64.size());
  for (std::size_t k = 0; k < p64.size(); ++k) {
    ASSERT_EQ(static_cast<std::int64_t>(p32[k]), p64[k]) << "entry " << k;
  }
}

TEST_P(GsSchedule, GatherAfterScatterAddIsQqt) {
  const auto [degree, nel] = GetParam();
  const sem::Mesh mesh = make_mesh(degree, nel);
  const GatherScatter gs(mesh);

  const std::vector<double> local = random_local(gs, 7);
  std::vector<double> global(gs.n_global());
  std::vector<double> via_global(gs.n_local());
  gs.scatter_add(local, global);
  gs.gather(global, via_global);

  std::vector<double> inout = local;
  gs.qqt(inout);
  for (std::size_t p = 0; p < inout.size(); ++p) {
    ASSERT_EQ(inout[p], via_global[p]) << "dof " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Meshes, GsSchedule,
                         ::testing::Values(std::tuple<int, int>{2, 2},
                                           std::tuple<int, int>{3, 3},
                                           std::tuple<int, int>{5, 2},
                                           std::tuple<int, int>{7, 2}),
                         [](const ::testing::TestParamInfo<std::tuple<int, int>>& tpi) {
                           std::string name = "N";
                           name += std::to_string(std::get<0>(tpi.param));
                           name += "_nel";
                           name += std::to_string(std::get<1>(tpi.param));
                           return name;
                         });

}  // namespace
}  // namespace semfpga::solver
