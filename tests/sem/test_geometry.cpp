#include "sem/geometry.hpp"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace semfpga::sem {
namespace {

TEST(Geometry, AffineBoxFactorsAreDiagonalAndExact) {
  // On an axis-aligned box of element size (hx, hy, hz):
  //   J = diag(hx/2, hy/2, hz/2), det J = hx hy hz / 8,
  //   G_rr = w * det * (2/hx)^2, cross terms vanish.
  BoxMeshSpec spec;
  spec.degree = 4;
  spec.nelx = 2;
  spec.nely = 1;
  spec.nelz = 3;
  spec.y1 = 2.0;  // stretch y so hy differs
  const ReferenceElement ref(spec.degree);
  const Mesh mesh(spec, ref);
  const GeomFactors gf = geometric_factors(mesh, ref);

  const double hx = 0.5, hy = 2.0, hz = 1.0 / 3.0;
  const double det = hx * hy * hz / 8.0;
  const int n1d = ref.n1d();
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    for (int k = 0; k < n1d; ++k) {
      for (int j = 0; j < n1d; ++j) {
        for (int i = 0; i < n1d; ++i) {
          const std::size_t ijk = ref.index(i, j, k);
          const double w = ref.weight3d(i, j, k);
          EXPECT_NEAR(gf.at(e, ijk, kGrr), w * det * 4.0 / (hx * hx), 1e-11);
          EXPECT_NEAR(gf.at(e, ijk, kGss), w * det * 4.0 / (hy * hy), 1e-11);
          EXPECT_NEAR(gf.at(e, ijk, kGtt), w * det * 4.0 / (hz * hz), 1e-11);
          EXPECT_NEAR(gf.at(e, ijk, kGrs), 0.0, 1e-12);
          EXPECT_NEAR(gf.at(e, ijk, kGrt), 0.0, 1e-12);
          EXPECT_NEAR(gf.at(e, ijk, kGst), 0.0, 1e-12);
          EXPECT_NEAR(gf.jac_det[e * gf.ppe + ijk], det, 1e-12);
        }
      }
    }
  }
}

class GeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, Deformation>> {};

TEST_P(GeometrySweep, MassSumsToDomainVolume) {
  // sum of w |J| over all quadrature nodes = volume of the box (all
  // deformations are volume-preserving on the boundary-fixed box only up to
  // interior rearrangement -- total volume is invariant).
  const auto [degree, def] = GetParam();
  BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = 2;
  spec.deformation = def;
  spec.deformation_amplitude = 0.03;
  const ReferenceElement ref(degree);
  const Mesh mesh(spec, ref);
  const GeomFactors gf = geometric_factors(mesh, ref);
  const double volume = std::accumulate(gf.mass.begin(), gf.mass.end(), 0.0);
  // The sine warp is not exactly volume preserving pointwise, but the map
  // is a diffeomorphism of the unit cube onto itself: total volume is 1.
  // Quadrature integrates the (smooth) Jacobian to spectral accuracy.
  const double tol = degree >= 5 ? 1e-8 : (def == Deformation::kNone ? 1e-12 : 5e-3);
  EXPECT_NEAR(volume, 1.0, tol);
}

TEST_P(GeometrySweep, TensorIsPositiveDefinitePointwise) {
  const auto [degree, def] = GetParam();
  BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = 2;
  spec.deformation = def;
  spec.deformation_amplitude = 0.03;
  const ReferenceElement ref(degree);
  const Mesh mesh(spec, ref);
  const GeomFactors gf = geometric_factors(mesh, ref);

  for (std::size_t p = 0; p < gf.n_elements * gf.ppe; ++p) {
    const double* g = &gf.g[p * kGeomComponents];
    // Sylvester's criterion on the symmetric 3x3 tensor.
    const double m1 = g[kGrr];
    const double m2 = g[kGrr] * g[kGss] - g[kGrs] * g[kGrs];
    const double m3 = g[kGrr] * (g[kGss] * g[kGtt] - g[kGst] * g[kGst]) -
                      g[kGrs] * (g[kGrs] * g[kGtt] - g[kGst] * g[kGrt]) +
                      g[kGrt] * (g[kGrs] * g[kGst] - g[kGss] * g[kGrt]);
    ASSERT_GT(m1, 0.0);
    ASSERT_GT(m2, 0.0);
    ASSERT_GT(m3, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegreesAndDeformations, GeometrySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 7),
                       ::testing::Values(Deformation::kNone, Deformation::kSine,
                                         Deformation::kTwist)));

TEST(Geometry, UniformScalingLaw) {
  // Scaling the domain by s scales G entries by s (in 3D: det ~ s^3,
  // J^-1 J^-T ~ s^-2).
  const int degree = 3;
  BoxMeshSpec unit;
  unit.degree = degree;
  BoxMeshSpec scaled = unit;
  const double s = 2.5;
  scaled.x1 = s;
  scaled.y1 = s;
  scaled.z1 = s;
  const ReferenceElement ref(degree);
  const GeomFactors g1 = geometric_factors(Mesh(unit, ref), ref);
  const GeomFactors g2 = geometric_factors(Mesh(scaled, ref), ref);
  for (std::size_t p = 0; p < g1.g.size(); ++p) {
    EXPECT_NEAR(g2.g[p], s * g1.g[p], 1e-10 * std::max(1.0, std::abs(g1.g[p])));
  }
}

TEST(Geometry, SplitMatchesInterleaved) {
  BoxMeshSpec spec;
  spec.degree = 4;
  spec.deformation = Deformation::kSine;
  const ReferenceElement ref(spec.degree);
  const Mesh mesh(spec, ref);
  const GeomFactors gf = geometric_factors(mesh, ref);
  const auto split = split_geom(gf);
  for (std::size_t p = 0; p < gf.n_elements * gf.ppe; ++p) {
    for (int c = 0; c < kGeomComponents; ++c) {
      EXPECT_DOUBLE_EQ(split[static_cast<std::size_t>(c)][p], gf.g[p * kGeomComponents + c]);
    }
  }
}

TEST(Geometry, TangledMeshIsRejected) {
  BoxMeshSpec spec;
  spec.degree = 5;
  spec.deformation = Deformation::kSine;
  spec.deformation_amplitude = 0.9;  // large enough to fold elements
  const ReferenceElement ref(spec.degree);
  EXPECT_THROW(
      {
        const Mesh mesh(spec, ref);
        (void)geometric_factors(mesh, ref);
      },
      std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::sem
