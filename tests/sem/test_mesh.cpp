#include "sem/mesh.hpp"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

namespace semfpga::sem {
namespace {

BoxMeshSpec small_spec(int degree, Deformation def = Deformation::kNone) {
  BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = 2;
  spec.nely = 3;
  spec.nelz = 2;
  spec.deformation = def;
  spec.deformation_amplitude = 0.04;
  return spec;
}

TEST(Mesh, CountsAreConsistent) {
  const Mesh mesh = box_mesh(small_spec(3));
  EXPECT_EQ(mesh.n_elements(), 12u);
  EXPECT_EQ(mesh.points_per_element(), 64u);
  EXPECT_EQ(mesh.n_local(), 768u);
  // Global lattice: (2*3+1)(3*3+1)(2*3+1) = 7*10*7.
  EXPECT_EQ(mesh.n_global(), 490u);
}

TEST(Mesh, CoordinatesSpanTheBox) {
  const Mesh mesh = box_mesh(small_spec(4));
  const auto [xmin, xmax] = std::minmax_element(mesh.x().begin(), mesh.x().end());
  const auto [ymin, ymax] = std::minmax_element(mesh.y().begin(), mesh.y().end());
  const auto [zmin, zmax] = std::minmax_element(mesh.z().begin(), mesh.z().end());
  EXPECT_DOUBLE_EQ(*xmin, 0.0);
  EXPECT_DOUBLE_EQ(*xmax, 1.0);
  EXPECT_DOUBLE_EQ(*ymin, 0.0);
  EXPECT_DOUBLE_EQ(*ymax, 1.0);
  EXPECT_DOUBLE_EQ(*zmin, 0.0);
  EXPECT_DOUBLE_EQ(*zmax, 1.0);
}

TEST(Mesh, GlobalIdsAreInRange) {
  const Mesh mesh = box_mesh(small_spec(2));
  for (const std::int64_t id : mesh.global_id()) {
    ASSERT_GE(id, 0);
    ASSERT_LT(static_cast<std::size_t>(id), mesh.n_global());
  }
}

TEST(Mesh, EveryGlobalIdIsTouched) {
  const Mesh mesh = box_mesh(small_spec(2));
  std::vector<int> touched(mesh.n_global(), 0);
  for (const std::int64_t id : mesh.global_id()) {
    touched[static_cast<std::size_t>(id)] = 1;
  }
  EXPECT_EQ(std::count(touched.begin(), touched.end(), 1),
            static_cast<long>(mesh.n_global()));
}

class MeshDeformations : public ::testing::TestWithParam<Deformation> {};

TEST_P(MeshDeformations, SharedNodesHaveIdenticalCoordinates) {
  // Continuity: every local copy of a global DOF must sit at the same
  // physical point, even on deformed meshes.
  const Mesh mesh = box_mesh(small_spec(3, GetParam()));
  std::map<std::int64_t, std::array<double, 3>> seen;
  for (std::size_t p = 0; p < mesh.n_local(); ++p) {
    const std::int64_t id = mesh.global_id()[p];
    const std::array<double, 3> coords = {mesh.x()[p], mesh.y()[p], mesh.z()[p]};
    const auto [it, inserted] = seen.emplace(id, coords);
    if (!inserted) {
      EXPECT_NEAR(it->second[0], coords[0], 1e-13);
      EXPECT_NEAR(it->second[1], coords[1], 1e-13);
      EXPECT_NEAR(it->second[2], coords[2], 1e-13);
    }
  }
}

TEST_P(MeshDeformations, BoundaryNodesStayOnTheBoundary) {
  // All deformations fix the box surface, so boundary-flagged nodes must
  // lie exactly on a face.
  const Mesh mesh = box_mesh(small_spec(3, GetParam()));
  const auto& bnd = mesh.boundary_flag();
  for (std::size_t p = 0; p < mesh.n_local(); ++p) {
    if (bnd[static_cast<std::size_t>(mesh.global_id()[p])] == 0) {
      continue;
    }
    const double x = mesh.x()[p];
    const double y = mesh.y()[p];
    const double z = mesh.z()[p];
    const bool on_face = std::abs(x) < 1e-12 || std::abs(x - 1.0) < 1e-12 ||
                         std::abs(y) < 1e-12 || std::abs(y - 1.0) < 1e-12 ||
                         std::abs(z) < 1e-12 || std::abs(z - 1.0) < 1e-12;
    EXPECT_TRUE(on_face) << "node at (" << x << "," << y << "," << z << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(AllDeformations, MeshDeformations,
                         ::testing::Values(Deformation::kNone, Deformation::kSine,
                                           Deformation::kTwist));

TEST(Mesh, DeformationMovesInteriorNodes) {
  const Mesh plain = box_mesh(small_spec(3, Deformation::kNone));
  const Mesh warped = box_mesh(small_spec(3, Deformation::kSine));
  double max_move = 0.0;
  for (std::size_t p = 0; p < plain.n_local(); ++p) {
    max_move = std::max(max_move, std::abs(plain.x()[p] - warped.x()[p]));
  }
  EXPECT_GT(max_move, 1e-3);
}

TEST(Mesh, BoundaryFlagsCountMatchesSurfaceLattice) {
  const Mesh mesh = box_mesh(small_spec(2));
  // 7x7x5 lattice at degree 2 on a (2,3,2) element box: surface nodes =
  // total - interior = 5*7*5 ... compute directly: dims (5,7,5).
  const long nx = 5, ny = 7, nz = 5;
  const long interior = (nx - 2) * (ny - 2) * (nz - 2);
  const auto& bnd = mesh.boundary_flag();
  EXPECT_EQ(std::count(bnd.begin(), bnd.end(), 1),
            nx * ny * nz - interior);
}

TEST(Mesh, RejectsBadSpecs) {
  BoxMeshSpec bad = small_spec(3);
  bad.nelx = 0;
  EXPECT_THROW(box_mesh(bad), std::invalid_argument);
  bad = small_spec(3);
  bad.x1 = bad.x0;
  EXPECT_THROW(box_mesh(bad), std::invalid_argument);
  bad = small_spec(0);
  EXPECT_THROW(box_mesh(bad), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::sem
