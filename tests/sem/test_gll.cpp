#include "sem/gll.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace semfpga::sem {
namespace {

TEST(Gll, TwoPointRuleIsTrapezoid) {
  const GllRule rule = gll_rule(2);
  ASSERT_EQ(rule.n_points(), 2);
  EXPECT_DOUBLE_EQ(rule.nodes[0], -1.0);
  EXPECT_DOUBLE_EQ(rule.nodes[1], 1.0);
  EXPECT_DOUBLE_EQ(rule.weights[0], 1.0);
  EXPECT_DOUBLE_EQ(rule.weights[1], 1.0);
}

TEST(Gll, ThreePointRuleIsSimpson) {
  const GllRule rule = gll_rule(3);
  EXPECT_NEAR(rule.nodes[1], 0.0, 1e-15);
  EXPECT_NEAR(rule.weights[0], 1.0 / 3.0, 1e-14);
  EXPECT_NEAR(rule.weights[1], 4.0 / 3.0, 1e-14);
  EXPECT_NEAR(rule.weights[2], 1.0 / 3.0, 1e-14);
}

TEST(Gll, FourPointKnownNodes) {
  // Interior nodes of the 4-point rule: +-1/sqrt(5).
  const GllRule rule = gll_rule(4);
  EXPECT_NEAR(rule.nodes[1], -1.0 / std::sqrt(5.0), 1e-14);
  EXPECT_NEAR(rule.nodes[2], 1.0 / std::sqrt(5.0), 1e-14);
  EXPECT_NEAR(rule.weights[0], 1.0 / 6.0, 1e-14);
  EXPECT_NEAR(rule.weights[1], 5.0 / 6.0, 1e-14);
}

TEST(Gll, FivePointKnownNodes) {
  // Interior nodes: 0 and +-sqrt(3/7).
  const GllRule rule = gll_rule(5);
  EXPECT_NEAR(rule.nodes[1], -std::sqrt(3.0 / 7.0), 1e-14);
  EXPECT_NEAR(rule.nodes[2], 0.0, 1e-15);
  EXPECT_NEAR(rule.weights[0], 0.1, 1e-14);
  EXPECT_NEAR(rule.weights[1], 49.0 / 90.0, 1e-14);
  EXPECT_NEAR(rule.weights[2], 32.0 / 45.0, 1e-14);
}

class GllSweep : public ::testing::TestWithParam<int> {};

TEST_P(GllSweep, NodesAreSortedAndSymmetric) {
  const GllRule rule = gll_rule(GetParam());
  const int n = rule.n_points();
  EXPECT_DOUBLE_EQ(rule.nodes.front(), -1.0);
  EXPECT_DOUBLE_EQ(rule.nodes.back(), 1.0);
  for (int i = 1; i < n; ++i) {
    EXPECT_LT(rule.nodes[i - 1], rule.nodes[i]);
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(rule.nodes[i], -rule.nodes[n - 1 - i], 1e-15);
    EXPECT_NEAR(rule.weights[i], rule.weights[n - 1 - i], 1e-13);
  }
}

TEST_P(GllSweep, WeightsArePositiveAndSumToTwo) {
  const GllRule rule = gll_rule(GetParam());
  double sum = 0.0;
  for (double w : rule.weights) {
    EXPECT_GT(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 2.0, 1e-12);
}

TEST_P(GllSweep, IntegratesPolynomialsExactly) {
  // A GLL rule with n points integrates degree <= 2n-3 exactly.
  const GllRule rule = gll_rule(GetParam());
  const int exact_degree = 2 * rule.n_points() - 3;
  for (int d = 0; d <= exact_degree; ++d) {
    std::vector<double> f(rule.nodes.size());
    for (std::size_t i = 0; i < f.size(); ++i) {
      f[i] = std::pow(rule.nodes[i], d);
    }
    const double exact = (d % 2 == 0) ? 2.0 / (d + 1.0) : 0.0;
    EXPECT_NEAR(integrate(rule, f), exact, 1e-11) << "degree " << d;
  }
}

TEST_P(GllSweep, DoesNotIntegrateDegreeTwoNMinusTwo) {
  // x^(2n-2) is beyond the exactness window: the rule must err.  The
  // analytic quadrature error decays super-exponentially with n and drops
  // below double-precision noise around n = 17.
  if (GetParam() >= 17) {
    GTEST_SKIP() << "quadrature error below double-precision resolution";
  }
  const GllRule rule = gll_rule(GetParam());
  const int d = 2 * rule.n_points() - 2;
  std::vector<double> f(rule.nodes.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = std::pow(rule.nodes[i], d);
  }
  const double exact = 2.0 / (d + 1.0);
  EXPECT_GT(std::abs(integrate(rule, f) - exact), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orders, GllSweep, ::testing::Range(2, 20));

TEST(Gll, HighOrderStillConverges) {
  const GllRule rule = gll_rule(64);
  double sum = 0.0;
  for (double w : rule.weights) {
    sum += w;
  }
  EXPECT_NEAR(sum, 2.0, 1e-10);
}

TEST(Gll, RejectsDegenerateRules) {
  EXPECT_THROW(gll_rule(0), std::invalid_argument);
  EXPECT_THROW(gll_rule(1), std::invalid_argument);
}

TEST(Gll, IntegrateChecksSampleCount) {
  const GllRule rule = gll_rule(4);
  EXPECT_THROW((void)integrate(rule, std::vector<double>(3, 1.0)), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::sem
