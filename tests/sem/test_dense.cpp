#include "sem/dense.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace semfpga::sem {
namespace {

struct DenseCase {
  int degree;
  Deformation deformation;
};

class DenseSweep : public ::testing::TestWithParam<DenseCase> {
 protected:
  DenseSweep() : ref_(GetParam().degree) {
    BoxMeshSpec spec;
    spec.degree = GetParam().degree;
    spec.nelx = spec.nely = spec.nelz = 2;
    spec.deformation = GetParam().deformation;
    spec.deformation_amplitude = 0.04;
    mesh_ = std::make_unique<Mesh>(spec, ref_);
    gf_ = geometric_factors(*mesh_, ref_);
  }
  ReferenceElement ref_;
  std::unique_ptr<Mesh> mesh_;
  GeomFactors gf_;
};

TEST_P(DenseSweep, LocalMatrixIsSymmetric) {
  const auto a = assemble_local_matrix(ref_, gf_, 0);
  const std::size_t n = ref_.points_per_element();
  double scale = 0.0;
  for (double v : a) {
    scale = std::max(scale, std::abs(v));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      ASSERT_NEAR(a[i * n + j], a[j * n + i], 1e-12 * scale);
    }
  }
}

TEST_P(DenseSweep, ConstantsAreInTheNullSpace) {
  const auto a = assemble_local_matrix(ref_, gf_, 1);
  const std::size_t n = ref_.points_per_element();
  double scale = 0.0;
  for (double v : a) {
    scale = std::max(scale, std::abs(v));
  }
  const auto y = dense_apply(a, std::vector<double>(n, 1.0));
  for (double v : y) {
    EXPECT_NEAR(v, 0.0, 1e-11 * scale);
  }
}

TEST_P(DenseSweep, QuadraticFormIsNonNegative) {
  const auto a = assemble_local_matrix(ref_, gf_, 2);
  const std::size_t n = ref_.points_per_element();
  SplitMix64 rng(1234);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> x(n);
    for (double& v : x) {
      v = rng.uniform(-1.0, 1.0);
    }
    const auto ax = dense_apply(a, x);
    double quad = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      quad += x[i] * ax[i];
    }
    EXPECT_GE(quad, -1e-10);
  }
}

TEST_P(DenseSweep, DiagonalMatchesAnalyticFormula) {
  for (std::size_t e = 0; e < 3; ++e) {
    const auto a = assemble_local_matrix(ref_, gf_, e);
    const auto d = local_diagonal(ref_, gf_, e);
    const std::size_t n = ref_.points_per_element();
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(d[i], a[i * n + i], 1e-10 * std::max(1.0, std::abs(a[i * n + i])))
          << "dof " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DenseSweep,
    ::testing::Values(DenseCase{1, Deformation::kNone}, DenseCase{2, Deformation::kNone},
                      DenseCase{3, Deformation::kNone}, DenseCase{2, Deformation::kSine},
                      DenseCase{3, Deformation::kSine}, DenseCase{3, Deformation::kTwist},
                      DenseCase{4, Deformation::kSine}));

TEST(Dense, RejectsOutOfRangeElement) {
  const ReferenceElement ref(2);
  BoxMeshSpec spec;
  spec.degree = 2;
  spec.nelx = spec.nely = spec.nelz = 1;
  const Mesh mesh(spec, ref);
  const GeomFactors gf = geometric_factors(mesh, ref);
  EXPECT_THROW(assemble_local_matrix(ref, gf, 1), std::invalid_argument);
  EXPECT_THROW(local_diagonal(ref, gf, 7), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::sem
