#include "sem/gauss.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "sem/gll.hpp"

namespace semfpga::sem {
namespace {

TEST(Gauss, OnePointRuleIsMidpoint) {
  const GaussRule rule = gauss_rule(1);
  ASSERT_EQ(rule.n_points(), 1);
  EXPECT_NEAR(rule.nodes[0], 0.0, 1e-15);
  EXPECT_NEAR(rule.weights[0], 2.0, 1e-15);
}

TEST(Gauss, TwoPointKnownNodes) {
  const GaussRule rule = gauss_rule(2);
  EXPECT_NEAR(rule.nodes[0], -1.0 / std::sqrt(3.0), 1e-14);
  EXPECT_NEAR(rule.nodes[1], 1.0 / std::sqrt(3.0), 1e-14);
  EXPECT_NEAR(rule.weights[0], 1.0, 1e-14);
  EXPECT_NEAR(rule.weights[1], 1.0, 1e-14);
}

TEST(Gauss, ThreePointKnownNodes) {
  const GaussRule rule = gauss_rule(3);
  EXPECT_NEAR(rule.nodes[0], -std::sqrt(0.6), 1e-14);
  EXPECT_NEAR(rule.nodes[1], 0.0, 1e-15);
  EXPECT_NEAR(rule.weights[0], 5.0 / 9.0, 1e-14);
  EXPECT_NEAR(rule.weights[1], 8.0 / 9.0, 1e-14);
}

class GaussSweep : public ::testing::TestWithParam<int> {};

TEST_P(GaussSweep, NodesAreInteriorSortedSymmetric) {
  const GaussRule rule = gauss_rule(GetParam());
  const int n = rule.n_points();
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(rule.nodes[i], -1.0);
    EXPECT_LT(rule.nodes[i], 1.0);
    EXPECT_NEAR(rule.nodes[i], -rule.nodes[n - 1 - i], 1e-15);
    EXPECT_NEAR(rule.weights[i], rule.weights[n - 1 - i], 1e-14);
    if (i > 0) {
      EXPECT_LT(rule.nodes[i - 1], rule.nodes[i]);
    }
  }
}

TEST_P(GaussSweep, IntegratesUpToDegreeTwoNMinusOne) {
  const GaussRule rule = gauss_rule(GetParam());
  const int exact_degree = 2 * rule.n_points() - 1;
  for (int d = 0; d <= exact_degree; ++d) {
    std::vector<double> f(rule.nodes.size());
    for (std::size_t i = 0; i < f.size(); ++i) {
      f[i] = std::pow(rule.nodes[i], d);
    }
    const double exact = (d % 2 == 0) ? 2.0 / (d + 1.0) : 0.0;
    EXPECT_NEAR(integrate(rule, f), exact, 1e-12) << "degree " << d;
  }
}

TEST_P(GaussSweep, WeightsSumToTwo) {
  const GaussRule rule = gauss_rule(GetParam());
  double sum = 0.0;
  for (double w : rule.weights) {
    EXPECT_GT(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 2.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussSweep, ::testing::Range(1, 17));

TEST(Gauss, BeatsGllByTwoOrders) {
  // At equal point count, Gauss integrates two polynomial degrees more
  // than GLL exactly: check the first degree GLL misses.
  const int n = 6;
  const GaussRule gauss = gauss_rule(n);
  const GllRule gll = gll_rule(n);
  const int d = 2 * n - 2;  // beyond GLL (2n-3), within Gauss (2n-1)
  std::vector<double> fg(gauss.nodes.size()), fl(gll.nodes.size());
  for (std::size_t i = 0; i < fg.size(); ++i) {
    fg[i] = std::pow(gauss.nodes[i], d);
  }
  for (std::size_t i = 0; i < fl.size(); ++i) {
    fl[i] = std::pow(gll.nodes[i], d);
  }
  const double exact = 2.0 / (d + 1.0);
  EXPECT_NEAR(integrate(gauss, fg), exact, 1e-13);
  EXPECT_GT(std::abs(integrate(gll, fl) - exact), 1e-6);
}

TEST(Gauss, RejectsZeroPoints) {
  EXPECT_THROW(gauss_rule(0), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::sem
