#include "sem/legendre.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace semfpga::sem {
namespace {

TEST(Legendre, LowOrdersMatchClosedForms) {
  const double xs[] = {-1.0, -0.7, -0.3, 0.0, 0.2, 0.5, 0.9, 1.0};
  for (double x : xs) {
    EXPECT_DOUBLE_EQ(legendre(0, x), 1.0);
    EXPECT_DOUBLE_EQ(legendre(1, x), x);
    EXPECT_NEAR(legendre(2, x), 0.5 * (3.0 * x * x - 1.0), 1e-14);
    EXPECT_NEAR(legendre(3, x), 0.5 * (5.0 * x * x * x - 3.0 * x), 1e-14);
    EXPECT_NEAR(legendre(4, x), 0.125 * (35.0 * std::pow(x, 4) - 30.0 * x * x + 3.0),
                1e-13);
  }
}

TEST(Legendre, EndpointValues) {
  // L_n(1) = 1 and L_n(-1) = (-1)^n for every order.
  for (int n = 0; n <= 24; ++n) {
    EXPECT_NEAR(legendre(n, 1.0), 1.0, 1e-12) << "n=" << n;
    EXPECT_NEAR(legendre(n, -1.0), (n % 2 == 0) ? 1.0 : -1.0, 1e-12) << "n=" << n;
  }
}

TEST(Legendre, ParityInX) {
  for (int n = 0; n <= 12; ++n) {
    for (double x : {0.1, 0.35, 0.77}) {
      const double sign = (n % 2 == 0) ? 1.0 : -1.0;
      EXPECT_NEAR(legendre(n, -x), sign * legendre(n, x), 1e-13) << "n=" << n;
    }
  }
}

TEST(Legendre, DerivativeMatchesFiniteDifference) {
  const double h = 1e-6;
  for (int n = 1; n <= 16; ++n) {
    for (double x : {-0.8, -0.25, 0.0, 0.4, 0.85}) {
      const auto [l, d] = legendre_deriv(n, x);
      EXPECT_NEAR(l, legendre(n, x), 1e-13);
      const double fd = (legendre(n, x + h) - legendre(n, x - h)) / (2.0 * h);
      EXPECT_NEAR(d, fd, 1e-5 * std::max(1.0, std::abs(fd))) << "n=" << n << " x=" << x;
    }
  }
}

TEST(Legendre, DerivativeEndpointIdentity) {
  // L'_n(+-1) = (+-1)^(n-1) n(n+1)/2.
  for (int n = 1; n <= 16; ++n) {
    const double expected = 0.5 * n * (n + 1.0);
    EXPECT_NEAR(legendre_deriv(n, 1.0).second, expected, 1e-9 * expected) << "n=" << n;
    const double sign = (n % 2 == 1) ? 1.0 : -1.0;
    EXPECT_NEAR(legendre_deriv(n, -1.0).second, sign * expected, 1e-9 * expected)
        << "n=" << n;
  }
}

TEST(Legendre, SecondDerivativeSatisfiesOde) {
  // (1 - x^2) L'' - 2x L' + n(n+1) L = 0 away from the endpoints.
  for (int n = 0; n <= 14; ++n) {
    for (double x : {-0.9, -0.4, 0.15, 0.6}) {
      const auto [l, d] = legendre_deriv(n, x);
      const double dd = legendre_second_deriv(n, x);
      const double residual = (1.0 - x * x) * dd - 2.0 * x * d + n * (n + 1.0) * l;
      EXPECT_NEAR(residual, 0.0, 1e-9 * std::max(1.0, std::abs(dd))) << "n=" << n;
    }
  }
}

TEST(Legendre, SecondDerivativeEndpointLimit) {
  // L''_n(1) = (n-1)n(n+1)(n+2)/8.
  for (int n = 2; n <= 12; ++n) {
    const double expected = (n - 1.0) * n * (n + 1.0) * (n + 2.0) / 8.0;
    EXPECT_NEAR(legendre_second_deriv(n, 1.0), expected, 1e-9 * expected) << "n=" << n;
  }
}

TEST(Legendre, RejectsNegativeOrder) {
  EXPECT_THROW((void)legendre(-1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)legendre_deriv(-2, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::sem
