#include "sem/deriv_matrix.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace semfpga::sem {
namespace {

class DerivSweep : public ::testing::TestWithParam<int> {
 protected:
  DerivSweep() : rule_(gll_rule(GetParam())), dm_(deriv_matrix(rule_)) {}
  GllRule rule_;
  DerivMatrix dm_;
};

TEST_P(DerivSweep, DifferentiatesPolynomialsExactly) {
  // D is exact for any polynomial representable in the nodal basis (deg <= N).
  const int n = rule_.n_points() - 1;
  for (int d = 0; d <= n; ++d) {
    std::vector<double> f(rule_.nodes.size());
    for (std::size_t i = 0; i < f.size(); ++i) {
      f[i] = std::pow(rule_.nodes[i], d);
    }
    const auto df = apply_matrix(dm_, f);
    for (std::size_t i = 0; i < f.size(); ++i) {
      const double exact = d == 0 ? 0.0 : d * std::pow(rule_.nodes[i], d - 1);
      EXPECT_NEAR(df[i], exact, 1e-10 * std::max(1.0, std::abs(exact)))
          << "degree " << d << " node " << i;
    }
  }
}

TEST_P(DerivSweep, RowSumsVanish) {
  // D applied to a constant gives zero: rows sum to zero.
  for (int i = 0; i < dm_.n1d; ++i) {
    double sum = 0.0;
    for (int j = 0; j < dm_.n1d; ++j) {
      sum += dm_.at(i, j);
    }
    EXPECT_NEAR(sum, 0.0, 1e-11) << "row " << i;
  }
}

TEST_P(DerivSweep, CornerEntriesMatchClosedForm) {
  const int n = dm_.n1d - 1;
  EXPECT_NEAR(dm_.at(0, 0), -0.25 * n * (n + 1.0), 1e-12);
  EXPECT_NEAR(dm_.at(n, n), 0.25 * n * (n + 1.0), 1e-12);
}

TEST_P(DerivSweep, CentroSymmetry) {
  // GLL differentiation matrices satisfy D[i][j] = -D[N-i][N-j].
  const int n = dm_.n1d - 1;
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j <= n; ++j) {
      EXPECT_NEAR(dm_.at(i, j), -dm_.at(n - i, n - j), 1e-11);
    }
  }
}

TEST_P(DerivSweep, TransposeIsConsistent) {
  for (int i = 0; i < dm_.n1d; ++i) {
    for (int j = 0; j < dm_.n1d; ++j) {
      EXPECT_DOUBLE_EQ(dm_.dt[static_cast<std::size_t>(i) * dm_.n1d + j], dm_.at(j, i));
    }
  }
}

TEST_P(DerivSweep, SummationByParts) {
  // W D + (W D)^T = B with B = diag(-1, 0, ..., 0, 1): the discrete analogue
  // of integration by parts, the property that makes D^T G D symmetric.
  const int n1d = dm_.n1d;
  for (int i = 0; i < n1d; ++i) {
    for (int j = 0; j < n1d; ++j) {
      const double lhs = rule_.weights[static_cast<std::size_t>(i)] * dm_.at(i, j) +
                         rule_.weights[static_cast<std::size_t>(j)] * dm_.at(j, i);
      double expected = 0.0;
      if (i == 0 && j == 0) {
        expected = -1.0;
      } else if (i == n1d - 1 && j == n1d - 1) {
        expected = 1.0;
      }
      EXPECT_NEAR(lhs, expected, 1e-11) << "i=" << i << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, DerivSweep, ::testing::Range(2, 18));

TEST(DerivMatrix, ApplyChecksSize) {
  const GllRule rule = gll_rule(5);
  const DerivMatrix dm = deriv_matrix(rule);
  EXPECT_THROW((void)apply_matrix(dm, std::vector<double>(4, 0.0)), std::invalid_argument);
}

TEST(DerivMatrix, DifferentiatesSineAccuratelyAtHighOrder) {
  // Spectral accuracy: at 16 points the derivative of sin on [-1,1] is
  // accurate to ~1e-12.
  const GllRule rule = gll_rule(16);
  const DerivMatrix dm = deriv_matrix(rule);
  std::vector<double> f(rule.nodes.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = std::sin(rule.nodes[i]);
  }
  const auto df = apply_matrix(dm, f);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(df[i], std::cos(rule.nodes[i]), 1e-11);
  }
}

}  // namespace
}  // namespace semfpga::sem
