#include "sem/interp.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "sem/gauss.hpp"
#include "sem/gll.hpp"

namespace semfpga::sem {
namespace {

TEST(Interp, ReproducesPolynomialsExactly) {
  // Interpolating from n points is exact for polynomials of degree < n.
  const GllRule gll = gll_rule(6);
  const GaussRule gauss = gauss_rule(6);
  const InterpMatrix im = interp_matrix(gll.nodes, gauss.nodes);
  for (int d = 0; d <= 5; ++d) {
    std::vector<double> f(gll.nodes.size());
    for (std::size_t i = 0; i < f.size(); ++i) {
      f[i] = std::pow(gll.nodes[i], d);
    }
    const auto g = interpolate(im, f);
    for (std::size_t i = 0; i < g.size(); ++i) {
      EXPECT_NEAR(g[i], std::pow(gauss.nodes[i], d), 1e-12) << "degree " << d;
    }
  }
}

TEST(Interp, RowsSumToOne) {
  // Partition of unity: interpolating the constant 1 gives 1 everywhere.
  const GllRule gll = gll_rule(9);
  const std::vector<double> targets = {-0.95, -0.3, 0.01, 0.5, 0.777};
  const InterpMatrix im = interp_matrix(gll.nodes, targets);
  for (int t = 0; t < im.n_to; ++t) {
    double sum = 0.0;
    for (int s = 0; s < im.n_from; ++s) {
      sum += im.at(t, s);
    }
    EXPECT_NEAR(sum, 1.0, 1e-13);
  }
}

TEST(Interp, ExactHitGivesUnitRow) {
  const GllRule gll = gll_rule(5);
  const std::vector<double> targets = {gll.nodes[2]};
  const InterpMatrix im = interp_matrix(gll.nodes, targets);
  for (int s = 0; s < im.n_from; ++s) {
    EXPECT_DOUBLE_EQ(im.at(0, s), s == 2 ? 1.0 : 0.0);
  }
}

TEST(Interp, GllToGaussRoundTripIsExactForPolynomials) {
  // GLL(n) -> Gauss(n) -> GLL(n) is exact on polynomials of degree < n
  // (both directions are exact interpolations of the same polynomial).
  const GllRule gll = gll_rule(7);
  const GaussRule gauss = gauss_rule(7);
  const InterpMatrix fwd = interp_matrix(gll.nodes, gauss.nodes);
  const InterpMatrix bwd = interp_matrix(gauss.nodes, gll.nodes);
  std::vector<double> f(gll.nodes.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = 1.0 - 2.0 * gll.nodes[i] + 3.0 * std::pow(gll.nodes[i], 5);
  }
  const auto back = interpolate(bwd, interpolate(fwd, f));
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(back[i], f[i], 1e-12);
  }
}

TEST(Interp, SpectralAccuracyForSmoothFunctions) {
  // Interpolating sin(3x) from GLL points converges spectrally: going from
  // 10 to 18 points must gain many orders of magnitude.
  auto max_error = [](int n_points) {
    const GllRule gll = gll_rule(n_points);
    std::vector<double> f(gll.nodes.size());
    for (std::size_t i = 0; i < f.size(); ++i) {
      f[i] = std::sin(3.0 * gll.nodes[i]);
    }
    const std::vector<double> targets = {-0.81, -0.33, 0.12, 0.47, 0.93};
    const InterpMatrix im = interp_matrix(gll.nodes, targets);
    const auto vals = interpolate(im, f);
    double err = 0.0;
    for (std::size_t t = 0; t < targets.size(); ++t) {
      err = std::max(err, std::abs(vals[t] - std::sin(3.0 * targets[t])));
    }
    return err;
  };
  const double e10 = max_error(10);
  const double e18 = max_error(18);
  EXPECT_LT(e18, 1e-4 * e10);
  EXPECT_LT(e18, 1e-12);
}

TEST(Interp, BarycentricWeightsAlternateInSign) {
  const GllRule gll = gll_rule(8);
  const auto w = barycentric_weights(gll.nodes);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_LT(w[i - 1] * w[i], 0.0) << "weights must alternate";
  }
}

TEST(Interp, RejectsDegenerateInput) {
  EXPECT_THROW((void)barycentric_weights({0.5}), std::invalid_argument);
  EXPECT_THROW((void)barycentric_weights({0.5, 0.5}), std::invalid_argument);
  const InterpMatrix im = interp_matrix({-1.0, 1.0}, {0.0});
  EXPECT_THROW((void)interpolate(im, std::vector<double>{1.0, 2.0, 3.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace semfpga::sem
