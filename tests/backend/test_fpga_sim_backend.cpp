/// FpgaSimBackend contract: bitwise-identical numerics to CpuBackend (it
/// runs the same host engine), with a modeled timeline whose entries are
/// exactly the standalone fpga::SemAccelerator estimate and the Section IV
/// model::throughput prediction for the same (N, E, device) point — one
/// prediction path, verifiable against the models it is built from.

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "backend/cpu_backend.hpp"
#include "backend/fpga_sim_backend.hpp"
#include "fpga/accelerator.hpp"
#include "model/kernel_cost.hpp"
#include "model/throughput.hpp"
#include "solver/cg.hpp"

namespace semfpga {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr int kDegree = 3;
constexpr int kNel = 3;

sem::Mesh make_mesh() {
  sem::BoxMeshSpec spec;
  spec.degree = kDegree;
  spec.nelx = spec.nely = spec.nelz = kNel;
  return sem::box_mesh(spec);
}

aligned_vector<double> make_rhs(const solver::PoissonSystem& system) {
  const std::size_t n = system.n_local();
  aligned_vector<double> f(n), b(n);
  system.sample(
      [](double x, double y, double z) {
        return 3.0 * kPi * kPi * std::sin(kPi * x) * std::sin(kPi * y) *
               std::sin(kPi * z);
      },
      std::span<double>(f.data(), n));
  system.assemble_rhs(std::span<const double>(f.data(), n),
                      std::span<double>(b.data(), n));
  return b;
}

TEST(FpgaSimBackend, NumericsAreBitwiseEqualToCpuBackend) {
  const sem::Mesh mesh = make_mesh();

  for (const bool fused : {false, true}) {
    for (const int threads : {1, 2}) {
      solver::PoissonSystem system(mesh);
      system.set_fused(fused);
      system.set_threads(threads);
      const auto b = make_rhs(system);
      const std::size_t n = system.n_local();

      solver::CgOptions options;
      options.max_iterations = 25;
      options.tolerance = 0.0;
      options.use_jacobi = true;
      options.record_history = true;

      backend::CpuBackend cpu(system);
      aligned_vector<double> x_cpu(n, 0.0);
      const solver::CgResult r_cpu =
          solver::solve_cg(cpu, std::span<const double>(b.data(), n),
                           std::span<double>(x_cpu.data(), n), options);

      backend::FpgaSimBackend fpga(system, backend::FpgaSimOptions{});
      aligned_vector<double> x_fpga(n, 0.0);
      const solver::CgResult r_fpga =
          solver::solve_cg(fpga, std::span<const double>(b.data(), n),
                           std::span<double>(x_fpga.data(), n), options);

      const std::string where = "fused=" + std::to_string(fused) +
                                " threads=" + std::to_string(threads);
      ASSERT_EQ(r_cpu.iterations, r_fpga.iterations) << where;
      ASSERT_EQ(r_cpu.residual_history.size(), r_fpga.residual_history.size()) << where;
      for (std::size_t i = 0; i < r_cpu.residual_history.size(); ++i) {
        ASSERT_EQ(r_cpu.residual_history[i], r_fpga.residual_history[i])
            << where << " iteration " << i;
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(x_cpu[i], x_fpga[i]) << where << " dof " << i;
      }
      ASSERT_EQ(r_cpu.flops, r_fpga.flops) << where;
    }
  }
}

TEST(FpgaSimBackend, TimelineMatchesTheStandaloneAcceleratorEstimate) {
  const sem::Mesh mesh = make_mesh();
  solver::PoissonSystem system(mesh);
  const auto b = make_rhs(system);
  const std::size_t n = system.n_local();

  solver::CgOptions options;
  options.max_iterations = 10;
  options.tolerance = 0.0;
  options.use_jacobi = true;

  backend::FpgaSimBackend be(system, backend::FpgaSimOptions{});
  aligned_vector<double> x(n, 0.0);
  const solver::CgResult result =
      solver::solve_cg(be, std::span<const double>(b.data(), n),
                       std::span<double>(x.data(), n), options);

  const backend::FpgaTimeline* t = be.timeline();
  ASSERT_NE(t, nullptr);

  // One operator apply for the initial residual plus one per iteration.
  EXPECT_EQ(t->operator_applies, result.iterations + 1);

  // The per-apply charge is exactly the standalone accelerator estimate for
  // the same (N, E, device) point.
  const fpga::SemAccelerator acc(fpga::stratix10_gx2800(),
                                 fpga::KernelConfig::banked(kDegree));
  const fpga::RunStats per_apply = acc.estimate(system.geom().n_elements);
  EXPECT_DOUBLE_EQ(t->per_apply_seconds, per_apply.seconds);
  EXPECT_DOUBLE_EQ(t->per_apply_gflops, per_apply.gflops);
  EXPECT_DOUBLE_EQ(t->clock_mhz, per_apply.clock_mhz);
  EXPECT_NEAR(t->operator_seconds,
              static_cast<double>(t->operator_applies) * per_apply.seconds,
              1e-12 * t->operator_seconds);

  // The recorded model point is exactly the Section IV throughput model at
  // the paper's 300 MHz projection clock and single-dimension unroll.
  const model::KernelCost cost = model::poisson_cost(kDegree);
  const model::DeviceEnvelope env = fpga::stratix10_gx2800().envelope(300.0);
  const model::Throughput tp =
      model::max_throughput(cost, env, model::UnrollPolicy::kInnerDim);
  EXPECT_DOUBLE_EQ(t->model_peak_gflops,
                   model::peak_flops(cost, tp, env.clock_hz) / 1e9);

  // Every CG pass was charged: 3 reductions + 1 vector pass per iteration
  // plus the setup passes, all at external-memory speed, plus the PCIe
  // movement of b, x-initial and x-final.
  EXPECT_GT(t->vector_passes, 3 * result.iterations);
  EXPECT_GT(t->vector_seconds, 0.0);
  EXPECT_DOUBLE_EQ(t->pcie_bytes, 3.0 * static_cast<double>(n) * 8.0);
  EXPECT_GT(t->pcie_seconds, 0.0);
  EXPECT_DOUBLE_EQ(
      t->total_seconds(),
      t->operator_seconds + t->vector_seconds + t->gather_scatter_seconds +
          t->pcie_seconds);
  EXPECT_EQ(t->device, "Stratix 10 GX2800");
}

TEST(FpgaSimBackend, DevicePresetsChangeTheChargedTime) {
  const sem::Mesh mesh = make_mesh();
  solver::PoissonSystem system(mesh);
  const auto b = make_rhs(system);
  const std::size_t n = system.n_local();

  solver::CgOptions options;
  options.max_iterations = 5;
  options.tolerance = 0.0;

  auto modeled_total = [&](const std::string& device) {
    backend::FpgaSimOptions fpga;
    fpga.device = device;
    backend::FpgaSimBackend be(system, fpga);
    aligned_vector<double> x(n, 0.0);
    (void)solver::solve_cg(be, std::span<const double>(b.data(), n),
                           std::span<double>(x.data(), n), options);
    return be.timeline()->total_seconds();
  };

  const double gx = modeled_total("gx2800");
  const double ideal = modeled_total("ideal-cfd");
  EXPECT_GT(gx, 0.0);
  EXPECT_GT(ideal, 0.0);
  // The hypothetical 1.2 TB/s device must beat the 76.8 GB/s board.
  EXPECT_LT(ideal, gx);
}

TEST(FpgaSimBackend, DeviceSessionMovesTheSameBytesInTwoTransfers) {
  const sem::Mesh mesh = make_mesh();
  solver::PoissonSystem system(mesh);
  const auto b = make_rhs(system);
  const std::size_t n = system.n_local();
  constexpr int kSolves = 3;

  solver::CgOptions options;
  options.max_iterations = 5;
  options.tolerance = 0.0;

  auto run_solves = [&](backend::FpgaSimBackend& be) {
    for (int s = 0; s < kSolves; ++s) {
      aligned_vector<double> x(n, 0.0);
      (void)solver::solve_cg(be, std::span<const double>(b.data(), n),
                             std::span<double>(x.data(), n), options);
    }
  };

  backend::FpgaSimBackend loose(system, backend::FpgaSimOptions{});
  run_solves(loose);
  backend::FpgaSimBackend batched(system, backend::FpgaSimOptions{});
  batched.session_begin(kSolves);
  EXPECT_TRUE(batched.in_session());
  run_solves(batched);
  batched.session_end(kSolves);
  EXPECT_FALSE(batched.in_session());

  // Identical data movement, amortised begin/end: one bulk download + one
  // bulk upload instead of a pair per solve.
  EXPECT_DOUBLE_EQ(batched.timeline()->pcie_bytes, loose.timeline()->pcie_bytes);
  EXPECT_EQ(loose.timeline()->pcie_transfers, 2 * kSolves);
  EXPECT_EQ(batched.timeline()->pcie_transfers, 2);
  // With no per-transfer latency the modeled PCIe time is bytes/bandwidth
  // either way.
  EXPECT_DOUBLE_EQ(batched.timeline()->pcie_seconds,
                   loose.timeline()->pcie_seconds);
}

TEST(FpgaSimBackend, PcieLatencyChargesPerTransferSoSessionsAmortiseIt) {
  const sem::Mesh mesh = make_mesh();
  solver::PoissonSystem system(mesh);
  const auto b = make_rhs(system);
  const std::size_t n = system.n_local();
  constexpr int kSolves = 4;
  constexpr double kLatency = 20e-6;

  solver::CgOptions options;
  options.max_iterations = 5;
  options.tolerance = 0.0;

  backend::FpgaSimOptions with_latency;
  with_latency.pcie_latency_s = kLatency;

  auto pcie_seconds = [&](bool session) {
    backend::FpgaSimBackend be(system, with_latency);
    if (session) {
      be.session_begin(kSolves);
    }
    for (int s = 0; s < kSolves; ++s) {
      aligned_vector<double> x(n, 0.0);
      (void)solver::solve_cg(be, std::span<const double>(b.data(), n),
                             std::span<double>(x.data(), n), options);
    }
    if (session) {
      be.session_end(kSolves);
    }
    return be.timeline()->pcie_seconds;
  };

  const double loose = pcie_seconds(false);
  const double batched = pcie_seconds(true);
  // 2 transfers instead of 2 * kSolves: the batch saves exactly the latency
  // of the transfers it coalesced away.
  EXPECT_NEAR(loose - batched, (2.0 * kSolves - 2.0) * kLatency,
              1e-15 * loose);
}

TEST(FpgaSimBackend, DefaultOptionsChargeNoPcieLatency) {
  // pcie_latency_s defaults to 0: every previously modeled number is
  // unchanged, only the new transfer counter appears.
  const sem::Mesh mesh = make_mesh();
  solver::PoissonSystem system(mesh);
  const auto b = make_rhs(system);
  const std::size_t n = system.n_local();

  solver::CgOptions options;
  options.max_iterations = 5;
  options.tolerance = 0.0;

  backend::FpgaSimBackend be(system, backend::FpgaSimOptions{});
  aligned_vector<double> x(n, 0.0);
  (void)solver::solve_cg(be, std::span<const double>(b.data(), n),
                         std::span<double>(x.data(), n), options);
  const backend::FpgaTimeline* t = be.timeline();
  EXPECT_DOUBLE_EQ(t->pcie_seconds,
                   t->pcie_bytes / (12.0 * 1e9));  // bandwidth term only
  EXPECT_EQ(t->pcie_transfers, 2);
}

TEST(FpgaSimBackend, SessionMisuseIsRefused) {
  const sem::Mesh mesh = make_mesh();
  solver::PoissonSystem system(mesh);
  backend::FpgaSimBackend be(system, backend::FpgaSimOptions{});
  EXPECT_THROW(be.session_end(1), std::invalid_argument);
  EXPECT_THROW(be.session_begin(0), std::invalid_argument);
  be.session_begin(2);
  EXPECT_THROW(be.session_begin(2), std::invalid_argument);
  be.session_end(2);
  EXPECT_THROW(be.session_end(2), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga
