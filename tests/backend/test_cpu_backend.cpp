/// CpuBackend is a thin adapter over the execution engine: a solve through
/// it must be bitwise identical to the pre-backend direct-engine CG at
/// every variant × threads × fused/split × preconditioner combination.
/// The oracle below is a faithful copy of the direct-engine loop the
/// repository shipped before the Backend seam (system.apply +
/// segmented_reduce + parallel_for, identical pass structure), so any
/// reassociation the adapter sneaked in would show up as a bit flip.

#include <cmath>

#include <gtest/gtest.h>

#include "backend/cpu_backend.hpp"
#include "common/parallel.hpp"
#include "solver/cg.hpp"

namespace semfpga {
namespace {

constexpr double kPi = 3.14159265358979323846;

sem::Mesh make_mesh(int degree, int nel, bool deformed = false) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = nel;
  if (deformed) {
    spec.deformation = sem::Deformation::kSine;
    spec.deformation_amplitude = 0.03;
  }
  return sem::box_mesh(spec);
}

aligned_vector<double> make_rhs(const solver::PoissonSystem& system) {
  const std::size_t n = system.n_local();
  aligned_vector<double> f(n), b(n);
  system.sample(
      [](double x, double y, double z) {
        return 3.0 * kPi * kPi * std::sin(kPi * x) * std::sin(kPi * y) *
               std::sin(kPi * z);
      },
      std::span<double>(f.data(), n));
  system.assemble_rhs(std::span<const double>(f.data(), n),
                      std::span<double>(b.data(), n));
  return b;
}

/// The pre-backend direct-engine CG, pass for pass (see PR 3's cg.cpp).
solver::CgResult direct_engine_cg(const solver::PoissonSystem& system,
                                  std::span<const double> b, std::span<double> x,
                                  const solver::CgOptions& options) {
  const std::size_t n = system.n_local();
  const auto& diag = system.jacobi_diagonal();
  const auto& c = system.gs().inv_multiplicity();
  const int threads = options.threads < 0 ? system.threads() : options.threads;
  const std::size_t seg = system.reduction_segment();
  const bool identity_precond = !options.use_jacobi;

  aligned_vector<double> r(n), p(n), w(n);
  aligned_vector<double> z(identity_precond ? 0 : n);
  solver::CgResult result;

  system.apply(x, std::span<double>(w.data(), n));
  double rr = segmented_reduce(n, seg, threads, [&](std::size_t begin, std::size_t end) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double ri = b[i] - w[i];
      r[i] = ri;
      acc += ri * ri * c[i];
    }
    return acc;
  });

  auto precondition_dot = [&](const aligned_vector<double>& in) {
    return segmented_reduce(n, seg, threads, [&](std::size_t begin, std::size_t end) {
      double acc = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        const double zi = in[i] / diag[i];
        z[i] = zi;
        acc += in[i] * zi * c[i];
      }
      return acc;
    });
  };

  double rho = identity_precond ? rr : precondition_dot(r);
  const aligned_vector<double>& z_like = identity_precond ? r : z;
  parallel_for(n, threads, [&](std::size_t i) { p[i] = z_like[i]; });

  double res_norm = std::sqrt(std::abs(rr));
  if (options.record_history) {
    result.residual_history.push_back(res_norm);
  }
  result.final_residual = res_norm;
  if (res_norm <= options.tolerance) {
    result.converged = true;
    return result;
  }

  for (int it = 0; it < options.max_iterations; ++it) {
    system.apply(std::span<const double>(p.data(), n), std::span<double>(w.data(), n));
    const double pw = system.weighted_dot(std::span<const double>(p.data(), n),
                                          std::span<const double>(w.data(), n));
    const double alpha = rho / pw;
    rr = segmented_reduce(n, seg, threads, [&](std::size_t begin, std::size_t end) {
      double acc = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        x[i] += alpha * p[i];
        const double ri = r[i] - alpha * w[i];
        r[i] = ri;
        acc += ri * ri * c[i];
      }
      return acc;
    });
    result.iterations = it + 1;

    res_norm = std::sqrt(std::abs(rr));
    if (options.record_history) {
      result.residual_history.push_back(res_norm);
    }
    result.final_residual = res_norm;
    if (res_norm <= options.tolerance) {
      result.converged = true;
      break;
    }

    const double rho_new = identity_precond ? rr : precondition_dot(r);
    const double beta = rho_new / rho;
    rho = rho_new;
    parallel_for(n, threads,
                 [&](std::size_t i) { p[i] = z_like[i] + beta * p[i]; });
  }
  return result;
}

TEST(CpuBackend, SolveIsBitwiseIdenticalToTheDirectEngine) {
  const sem::Mesh mesh = make_mesh(3, 3, /*deformed=*/true);

  for (const auto variant : {kernels::AxVariant::kReference, kernels::AxVariant::kFixed}) {
    for (const bool fused : {false, true}) {
      for (const int threads : {1, 3}) {
        for (const bool jacobi : {false, true}) {
          solver::PoissonSystem system(mesh);
          system.set_ax_variant(variant);
          system.set_fused(fused);
          system.set_threads(threads);
          const auto b = make_rhs(system);
          const std::size_t n = system.n_local();

          solver::CgOptions options;
          options.max_iterations = 25;
          options.tolerance = 0.0;
          options.use_jacobi = jacobi;
          options.record_history = true;
          options.threads = threads;

          aligned_vector<double> x_direct(n, 0.0);
          const solver::CgResult direct = direct_engine_cg(
              system, std::span<const double>(b.data(), n),
              std::span<double>(x_direct.data(), n), options);

          backend::CpuBackend be(system);
          aligned_vector<double> x_backend(n, 0.0);
          const solver::CgResult via_backend = solver::solve_cg(
              be, std::span<const double>(b.data(), n),
              std::span<double>(x_backend.data(), n), options);

          const std::string where = std::string("variant=") +
                                    kernels::ax_variant_name(variant) +
                                    " fused=" + std::to_string(fused) +
                                    " threads=" + std::to_string(threads) +
                                    " jacobi=" + std::to_string(jacobi);
          ASSERT_EQ(direct.iterations, via_backend.iterations) << where;
          ASSERT_EQ(direct.residual_history.size(),
                    via_backend.residual_history.size())
              << where;
          for (std::size_t i = 0; i < direct.residual_history.size(); ++i) {
            ASSERT_EQ(direct.residual_history[i], via_backend.residual_history[i])
                << where << " iteration " << i;
          }
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(x_direct[i], x_backend[i]) << where << " dof " << i;
          }
        }
      }
    }
  }
}

TEST(CpuBackend, PrimitivesMatchTheSystemBitwise) {
  const sem::Mesh mesh = make_mesh(4, 2);
  solver::PoissonSystem system(mesh);
  system.set_threads(2);
  backend::CpuBackend be(system);
  const std::size_t n = system.n_local();
  EXPECT_EQ(be.n_local(), n);
  EXPECT_EQ(be.n_global(), system.gs().n_global());
  EXPECT_FALSE(be.collective());

  aligned_vector<double> u(n);
  system.sample([](double x, double y, double z) { return x * y + z * z + 0.5; },
                std::span<double>(u.data(), n));

  aligned_vector<double> w_sys(n), w_be(n);
  system.apply(std::span<const double>(u.data(), n), std::span<double>(w_sys.data(), n));
  be.apply(std::span<const double>(u.data(), n), std::span<double>(w_be.data(), n));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(w_sys[i], w_be[i]) << "apply, dof " << i;
  }

  system.apply_unmasked(std::span<const double>(u.data(), n),
                        std::span<double>(w_sys.data(), n));
  be.apply_unmasked(std::span<const double>(u.data(), n),
                    std::span<double>(w_be.data(), n));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(w_sys[i], w_be[i]) << "apply_unmasked, dof " << i;
  }

  aligned_vector<double> q_sys = u, q_be = u;
  system.gs().qqt(std::span<double>(q_sys.data(), n));
  be.qqt(std::span<double>(q_be.data(), n));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(q_sys[i], q_be[i]) << "qqt, dof " << i;
  }

  be.apply_mask(std::span<double>(q_be.data(), n));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(q_sys[i] * system.mask()[i], q_be[i]) << "mask, dof " << i;
  }

  const double dot_sys = system.weighted_dot(std::span<const double>(u.data(), n),
                                             std::span<const double>(w_sys.data(), n));
  const double dot_be = be.dot(std::span<const double>(u.data(), n),
                               std::span<const double>(w_sys.data(), n));
  EXPECT_EQ(dot_sys, dot_be);
}

TEST(CpuBackend, VectorThreadOverrideIsBitwiseInvariant) {
  const sem::Mesh mesh = make_mesh(3, 4);
  solver::PoissonSystem system(mesh);
  const auto b = make_rhs(system);
  const std::size_t n = system.n_local();

  solver::CgOptions options;
  options.max_iterations = 20;
  options.tolerance = 0.0;
  options.use_jacobi = true;

  aligned_vector<double> x_ref;
  for (const int threads : {1, 2, 5}) {
    backend::CpuBackend be(system, threads);
    EXPECT_EQ(be.threads(), threads);
    aligned_vector<double> x(n, 0.0);
    const solver::CgResult result =
        solver::solve_cg(be, std::span<const double>(b.data(), n),
                         std::span<double>(x.data(), n), options);
    EXPECT_EQ(result.iterations, 20);
    if (x_ref.empty()) {
      x_ref = x;
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(x_ref[i], x[i]) << "threads=" << threads << " dof " << i;
    }
  }
}

}  // namespace
}  // namespace semfpga
