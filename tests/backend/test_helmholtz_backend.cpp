/// The BK5 Helmholtz solve through the Backend seam:
///  * cpu and fpga-sim run the same bitwise-identical CG solve (the
///    fpga-sim backend only changes the clock it charges);
///  * the fpga-sim timeline charges the *Helmholtz* kernel — per-apply
///    equals the standalone accelerator estimate with
///    KernelKind::kHelmholtz, and the recorded Section IV peak is the
///    model::helmholtz_cost point, not the Poisson one;
///  * operator_flops reports the BK5 count on every tier;
///  * the distributed tier solves the same system bitwise identically to
///    the single rank at any ranks x threads, with the interface-corrected
///    Jacobi diagonal carrying the mass term.

#include <cmath>

#include <gtest/gtest.h>

#include "backend/cpu_backend.hpp"
#include "backend/fpga_sim_backend.hpp"
#include "fpga/accelerator.hpp"
#include "kernels/helmholtz.hpp"
#include "model/kernel_cost.hpp"
#include "model/throughput.hpp"
#include "runtime/distributed_cg.hpp"
#include "solver/cg.hpp"
#include "solver/helmholtz_system.hpp"

namespace semfpga {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kLambda = 1.25;
constexpr int kDegree = 3;
constexpr int kNel = 3;

sem::Mesh make_mesh() {
  sem::BoxMeshSpec spec;
  spec.degree = kDegree;
  spec.nelx = spec.nely = spec.nelz = kNel;
  return sem::box_mesh(spec);
}

double forcing(double x, double y, double z) {
  return (3.0 * kPi * kPi + kLambda) * std::sin(kPi * x) * std::sin(kPi * y) *
         std::sin(kPi * z);
}

aligned_vector<double> make_rhs(const solver::PoissonSystem& system) {
  const std::size_t n = system.n_local();
  aligned_vector<double> f(n), b(n);
  system.sample(forcing, std::span<double>(f.data(), n));
  system.assemble_rhs(std::span<const double>(f.data(), n),
                      std::span<double>(b.data(), n));
  return b;
}

TEST(HelmholtzBackend, CpuAndFpgaSimSolvesAreBitwiseEqual) {
  const sem::Mesh mesh = make_mesh();

  for (const bool fused : {false, true}) {
    for (const int threads : {1, 2}) {
      solver::HelmholtzSystem system(mesh, kLambda);
      system.set_fused(fused);
      system.set_threads(threads);
      const auto b = make_rhs(system);
      const std::size_t n = system.n_local();

      solver::CgOptions options;
      options.max_iterations = 25;
      options.tolerance = 0.0;
      options.use_jacobi = true;
      options.record_history = true;

      backend::CpuBackend cpu(system);
      aligned_vector<double> x_cpu(n, 0.0);
      const solver::CgResult r_cpu =
          solver::solve_cg(cpu, std::span<const double>(b.data(), n),
                           std::span<double>(x_cpu.data(), n), options);

      backend::FpgaSimBackend fpga(system, backend::FpgaSimOptions{});
      aligned_vector<double> x_fpga(n, 0.0);
      const solver::CgResult r_fpga =
          solver::solve_cg(fpga, std::span<const double>(b.data(), n),
                           std::span<double>(x_fpga.data(), n), options);

      const std::string where = "fused=" + std::to_string(fused) +
                                " threads=" + std::to_string(threads);
      ASSERT_EQ(r_cpu.iterations, r_fpga.iterations) << where;
      ASSERT_EQ(r_cpu.residual_history.size(), r_fpga.residual_history.size()) << where;
      for (std::size_t i = 0; i < r_cpu.residual_history.size(); ++i) {
        ASSERT_EQ(r_cpu.residual_history[i], r_fpga.residual_history[i])
            << where << " iteration " << i;
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(x_cpu[i], x_fpga[i]) << where << " dof " << i;
      }
      ASSERT_EQ(r_cpu.flops, r_fpga.flops) << where;
    }
  }
}

TEST(HelmholtzBackend, RegistryBuildsBackendsOverTheDerivedSystem) {
  const sem::Mesh mesh = make_mesh();
  solver::HelmholtzSystem system(mesh, kLambda);

  for (const std::string& name : backend::known_backends()) {
    const auto be = backend::make(name, system);
    // The virtual FLOP descriptor must survive the registry: every tier
    // reports the BK5 kernel count, not the Poisson one.
    EXPECT_EQ(be->operator_flops(),
              kernels::helmholtz_flops(system.ref().n1d(), system.geom().n_elements))
        << name;
  }
}

TEST(HelmholtzBackend, FpgaSimChargesTheHelmholtzKernel) {
  const sem::Mesh mesh = make_mesh();
  solver::HelmholtzSystem system(mesh, kLambda);
  const auto b = make_rhs(system);
  const std::size_t n = system.n_local();

  solver::CgOptions options;
  options.max_iterations = 10;
  options.tolerance = 0.0;
  options.use_jacobi = true;

  backend::FpgaSimBackend be(system, backend::FpgaSimOptions{});
  aligned_vector<double> x(n, 0.0);
  const solver::CgResult result =
      solver::solve_cg(be, std::span<const double>(b.data(), n),
                       std::span<double>(x.data(), n), options);

  const backend::FpgaTimeline* t = be.timeline();
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->operator_applies, result.iterations + 1);

  // Per-apply must equal the standalone accelerator estimate with the
  // Helmholtz kernel kind — the same numbers modeled_apply() reports.
  fpga::KernelConfig config = fpga::KernelConfig::banked(kDegree);
  config.kind = fpga::KernelKind::kHelmholtz;
  const fpga::SemAccelerator acc(fpga::stratix10_gx2800(), config);
  const fpga::RunStats per_apply = acc.estimate(system.geom().n_elements);
  EXPECT_DOUBLE_EQ(t->per_apply_seconds, per_apply.seconds);
  EXPECT_DOUBLE_EQ(t->per_apply_gflops, per_apply.gflops);

  const fpga::RunStats via_helper = backend::modeled_apply(
      backend::FpgaSimOptions{}, kDegree, system.geom().n_elements,
      /*helmholtz=*/true);
  EXPECT_DOUBLE_EQ(t->per_apply_seconds, via_helper.seconds);

  // ... and must differ from the Poisson charge (the BK5 kernel pays the
  // extra stream and its quantisation penalty).
  const fpga::RunStats poisson_apply =
      backend::modeled_apply(backend::FpgaSimOptions{}, kDegree,
                             system.geom().n_elements, /*helmholtz=*/false);
  EXPECT_NE(t->per_apply_seconds, poisson_apply.seconds);

  // The recorded Section IV peak is the Helmholtz-cost model point.
  const model::KernelCost cost = model::helmholtz_cost(kDegree);
  const model::DeviceEnvelope env = fpga::stratix10_gx2800().envelope(300.0);
  const model::Throughput tp =
      model::max_throughput(cost, env, model::UnrollPolicy::kInnerDim);
  EXPECT_DOUBLE_EQ(t->model_peak_gflops,
                   model::peak_flops(cost, tp, env.clock_hz) / 1e9);
}

TEST(HelmholtzBackend, DistributedSolveIsBitwiseEqualToSingleRank) {
  // The whole-problem driver with the Helmholtz operator: any ranks x
  // threads combination must reproduce the single-rank HelmholtzSystem
  // solve bit for bit — which exercises the interface-corrected diagonal
  // (Jacobi on) with the mass term folded in.
  runtime::DistributedSolveConfig config;
  config.spec.degree = kDegree;
  config.spec.nelx = config.spec.nely = 3;
  config.spec.nelz = 4;
  config.operator_kind = solver::OperatorKind::kHelmholtz;
  config.helmholtz_lambda = kLambda;
  config.cg.max_iterations = 25;
  config.cg.tolerance = 0.0;
  config.cg.use_jacobi = true;
  config.cg.record_history = true;
  config.forcing = forcing;

  // Single-rank oracle through the plain system + backend path.
  const sem::Mesh mesh = sem::box_mesh(config.spec);
  solver::HelmholtzSystem system(mesh, kLambda);
  const auto b = make_rhs(system);
  const std::size_t n = system.n_local();
  aligned_vector<double> x_ref(n, 0.0);
  const solver::CgResult r_ref =
      solver::solve_cg(system, std::span<const double>(b.data(), n),
                       std::span<double>(x_ref.data(), n), config.cg);

  for (const int ranks : {1, 2, 4}) {
    for (const int threads : {1, 2}) {
      config.ranks = ranks;
      config.threads = threads;
      const runtime::DistributedSolveResult out =
          runtime::solve_distributed_poisson(config);
      const std::string where =
          "ranks=" + std::to_string(ranks) + " threads=" + std::to_string(threads);
      ASSERT_EQ(out.cg.iterations, r_ref.iterations) << where;
      ASSERT_EQ(out.cg.flops, r_ref.flops) << where;
      ASSERT_EQ(out.cg.residual_history.size(), r_ref.residual_history.size())
          << where;
      for (std::size_t i = 0; i < r_ref.residual_history.size(); ++i) {
        ASSERT_EQ(out.cg.residual_history[i], r_ref.residual_history[i])
            << where << " iteration " << i;
      }
      ASSERT_EQ(out.x.size(), x_ref.size()) << where;
      for (std::size_t p = 0; p < x_ref.size(); ++p) {
        ASSERT_EQ(out.x[p], x_ref[p]) << where << " dof " << p;
      }
    }
  }
}

TEST(HelmholtzBackend, DistributedFpgaSimChargesPerRankHelmholtzTime) {
  runtime::DistributedSolveConfig config;
  config.spec.degree = kDegree;
  config.spec.nelx = config.spec.nely = 2;
  config.spec.nelz = 4;
  config.ranks = 2;
  config.operator_kind = solver::OperatorKind::kHelmholtz;
  config.helmholtz_lambda = kLambda;
  config.backend = "fpga-sim";
  config.cg.max_iterations = 8;
  config.cg.tolerance = 0.0;
  config.forcing = forcing;

  const runtime::DistributedSolveResult out =
      runtime::solve_distributed_poisson(config);
  EXPECT_GT(out.modeled_seconds, 0.0);

  // Rank 0 owns half the slab; its per-apply charge must be the Helmholtz
  // estimate for its element share, not the Poisson one.
  const std::size_t rank_elements =
      static_cast<std::size_t>(config.spec.nelx) * config.spec.nely * 2;
  const fpga::RunStats helm = backend::modeled_apply(
      backend::FpgaSimOptions{}, kDegree, rank_elements, /*helmholtz=*/true);
  const fpga::RunStats poisson = backend::modeled_apply(
      backend::FpgaSimOptions{}, kDegree, rank_elements, /*helmholtz=*/false);
  // (iterations + 1) operator applies dominated by the kernel charge: the
  // modeled total must be at least the Helmholtz operator time and the two
  // kernels must be distinguishable at this size.
  EXPECT_NE(helm.seconds, poisson.seconds);
  EXPECT_GT(out.modeled_seconds,
            static_cast<double>(config.cg.max_iterations + 1) * helm.seconds);
}

}  // namespace
}  // namespace semfpga
