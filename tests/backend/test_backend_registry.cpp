/// The backend string registry: the seam `--backend=` and future backends
/// plug into.  Unknown names must throw (matching the CLI's unknown-value
/// hardening) and the error must list the registered names.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "backend/backend.hpp"
#include "backend/cpu_backend.hpp"
#include "backend/distributed_backend.hpp"
#include "backend/fpga_sim_backend.hpp"
#include "runtime/distributed_cg.hpp"
#include "solver/poisson_system.hpp"

namespace semfpga {
namespace {

sem::Mesh make_mesh() {
  sem::BoxMeshSpec spec;
  spec.degree = 3;
  spec.nelx = spec.nely = spec.nelz = 2;
  return sem::box_mesh(spec);
}

TEST(BackendRegistry, KnowsTheBuiltInBackends) {
  const auto names = backend::known_backends();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], "cpu");
  EXPECT_EQ(names[1], "fpga-sim");
  const std::string joined = backend::known_backends_joined();
  EXPECT_NE(joined.find("cpu"), std::string::npos);
  EXPECT_NE(joined.find("fpga-sim"), std::string::npos);
}

TEST(BackendRegistry, MakesNamedBackends) {
  const sem::Mesh mesh = make_mesh();
  const solver::PoissonSystem system(mesh);
  const auto cpu = backend::make("cpu", system);
  ASSERT_NE(cpu, nullptr);
  EXPECT_STREQ(cpu->name(), "cpu");
  EXPECT_EQ(cpu->n_local(), system.n_local());
  EXPECT_EQ(cpu->timeline(), nullptr);

  const auto fpga = backend::make("fpga-sim", system);
  ASSERT_NE(fpga, nullptr);
  EXPECT_STREQ(fpga->name(), "fpga-sim");
  ASSERT_NE(fpga->timeline(), nullptr);
  EXPECT_EQ(fpga->timeline()->operator_applies, 0);
}

TEST(BackendRegistry, UnknownNameThrowsListingTheRegistered) {
  const sem::Mesh mesh = make_mesh();
  const solver::PoissonSystem system(mesh);
  EXPECT_THROW(backend::require_known("foo"), std::invalid_argument);
  try {
    (void)backend::make("foo", system);
    FAIL() << "make(\"foo\") must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("foo"), std::string::npos);
    EXPECT_NE(what.find("cpu"), std::string::npos);
    EXPECT_NE(what.find("fpga-sim"), std::string::npos);
  }
}

TEST(BackendRegistry, UnknownFpgaDeviceThrowsListingTheKnown) {
  try {
    (void)backend::fpga_device_by_name("not-a-device");
    FAIL() << "unknown device preset must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("not-a-device"), std::string::npos);
    EXPECT_NE(what.find("gx2800"), std::string::npos);
  }
  EXPECT_EQ(backend::fpga_device_by_name("gx2800").name, "Stratix 10 GX2800");
}

TEST(BackendRegistry, RegisterBackendExtendsTheRegistry) {
  const sem::Mesh mesh = make_mesh();
  const solver::PoissonSystem system(mesh);
  backend::register_backend(
      "test-custom",
      [](const solver::PoissonSystem& s, const backend::MakeOptions& options) {
        return std::make_unique<backend::CpuBackend>(s, options.vector_threads);
      });
  const auto names = backend::known_backends();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-custom"), names.end());
  const auto be = backend::make("test-custom", system);
  ASSERT_NE(be, nullptr);
  EXPECT_STREQ(be->name(), "cpu");
}

TEST(BackendRegistry, CustomRankBackendRunsTheDistributedTier) {
  // A registered rank backend must be a drop-in for the built-ins end to
  // end: same driver, same fabric, bitwise-identical numerics.
  backend::register_rank_backend(
      "test-rank",
      [](runtime::RankSystem& rs, const backend::MakeOptions&) {
        return std::make_unique<backend::DistributedBackend>(rs);
      });
  const auto names = backend::known_rank_backends();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-rank"), names.end());
  EXPECT_NO_THROW(backend::require_known_rank("test-rank"));

  runtime::DistributedSolveConfig config;
  config.spec.degree = 3;
  config.spec.nelx = config.spec.nely = 2;
  config.spec.nelz = 4;
  config.ranks = 2;
  config.cg.max_iterations = 20;
  config.cg.tolerance = 1e-10;
  config.cg.record_history = true;
  config.forcing = [](double x, double y, double z) {
    return std::sin(x) * std::cos(y) * std::sin(z);
  };

  config.backend = "cpu";
  const runtime::DistributedSolveResult want = runtime::solve_distributed_poisson(config);
  config.backend = "test-rank";
  const runtime::DistributedSolveResult got = runtime::solve_distributed_poisson(config);

  ASSERT_EQ(got.cg.iterations, want.cg.iterations);
  EXPECT_EQ(got.cg.final_residual, want.cg.final_residual);
  ASSERT_EQ(got.x.size(), want.x.size());
  for (std::size_t p = 0; p < want.x.size(); ++p) {
    ASSERT_EQ(got.x[p], want.x[p]) << "dof " << p;
  }
}

}  // namespace
}  // namespace semfpga
