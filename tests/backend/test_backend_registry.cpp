/// The backend string registry: the seam `--backend=` and future backends
/// plug into.  Unknown names must throw (matching the CLI's unknown-value
/// hardening) and the error must list the registered names.

#include <algorithm>

#include <gtest/gtest.h>

#include "backend/backend.hpp"
#include "backend/cpu_backend.hpp"
#include "backend/fpga_sim_backend.hpp"
#include "solver/poisson_system.hpp"

namespace semfpga {
namespace {

sem::Mesh make_mesh() {
  sem::BoxMeshSpec spec;
  spec.degree = 3;
  spec.nelx = spec.nely = spec.nelz = 2;
  return sem::box_mesh(spec);
}

TEST(BackendRegistry, KnowsTheBuiltInBackends) {
  const auto names = backend::known_backends();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], "cpu");
  EXPECT_EQ(names[1], "fpga-sim");
  const std::string joined = backend::known_backends_joined();
  EXPECT_NE(joined.find("cpu"), std::string::npos);
  EXPECT_NE(joined.find("fpga-sim"), std::string::npos);
}

TEST(BackendRegistry, MakesNamedBackends) {
  const sem::Mesh mesh = make_mesh();
  const solver::PoissonSystem system(mesh);
  const auto cpu = backend::make("cpu", system);
  ASSERT_NE(cpu, nullptr);
  EXPECT_STREQ(cpu->name(), "cpu");
  EXPECT_EQ(cpu->n_local(), system.n_local());
  EXPECT_EQ(cpu->timeline(), nullptr);

  const auto fpga = backend::make("fpga-sim", system);
  ASSERT_NE(fpga, nullptr);
  EXPECT_STREQ(fpga->name(), "fpga-sim");
  ASSERT_NE(fpga->timeline(), nullptr);
  EXPECT_EQ(fpga->timeline()->operator_applies, 0);
}

TEST(BackendRegistry, UnknownNameThrowsListingTheRegistered) {
  const sem::Mesh mesh = make_mesh();
  const solver::PoissonSystem system(mesh);
  EXPECT_THROW(backend::require_known("foo"), std::invalid_argument);
  try {
    (void)backend::make("foo", system);
    FAIL() << "make(\"foo\") must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("foo"), std::string::npos);
    EXPECT_NE(what.find("cpu"), std::string::npos);
    EXPECT_NE(what.find("fpga-sim"), std::string::npos);
  }
}

TEST(BackendRegistry, UnknownFpgaDeviceThrowsListingTheKnown) {
  try {
    (void)backend::fpga_device_by_name("not-a-device");
    FAIL() << "unknown device preset must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("not-a-device"), std::string::npos);
    EXPECT_NE(what.find("gx2800"), std::string::npos);
  }
  EXPECT_EQ(backend::fpga_device_by_name("gx2800").name, "Stratix 10 GX2800");
}

TEST(BackendRegistry, RegisterBackendExtendsTheRegistry) {
  const sem::Mesh mesh = make_mesh();
  const solver::PoissonSystem system(mesh);
  backend::register_backend(
      "test-custom",
      [](const solver::PoissonSystem& s, const backend::MakeOptions& options) {
        return std::make_unique<backend::CpuBackend>(s, options.vector_threads);
      });
  const auto names = backend::known_backends();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-custom"), names.end());
  const auto be = backend::make("test-custom", system);
  ASSERT_NE(be, nullptr);
  EXPECT_STREQ(be->name(), "cpu");
}

}  // namespace
}  // namespace semfpga
