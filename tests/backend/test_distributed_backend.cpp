/// The Backend seam across the SPMD runtime: distributed solves route
/// through DistributedBackend (solver::solve_cg is the only CG loop), stay
/// bitwise identical to the single-rank CpuBackend solve at any rank
/// count, and the fpga-sim flavour charges a per-rank modeled timeline
/// without touching the numerics.

#include <cmath>

#include <gtest/gtest.h>

#include "backend/cpu_backend.hpp"
#include "runtime/distributed_cg.hpp"
#include "solver/cg.hpp"
#include "solver/nekbone.hpp"

namespace semfpga {
namespace {

constexpr double kPi = 3.14159265358979323846;

double forcing(double x, double y, double z) {
  return std::sin(kPi * x) * std::sin(kPi * y) * std::sin(kPi * z);
}

runtime::DistributedSolveConfig base_config() {
  runtime::DistributedSolveConfig config;
  config.spec.degree = 3;
  config.spec.nelx = 2;
  config.spec.nely = 2;
  config.spec.nelz = 4;
  config.cg.max_iterations = 15;
  config.cg.tolerance = 0.0;
  config.cg.use_jacobi = true;
  config.cg.record_history = true;
  config.forcing = forcing;
  return config;
}

TEST(DistributedBackend, FpgaSimRanksMatchSingleRankCpuBitwise) {
  runtime::DistributedSolveConfig cpu1 = base_config();
  cpu1.ranks = 1;
  const runtime::DistributedSolveResult ref = runtime::solve_distributed_poisson(cpu1);
  EXPECT_EQ(ref.modeled_seconds, 0.0);

  for (const int ranks : {2, 4}) {
    runtime::DistributedSolveConfig fpga = base_config();
    fpga.ranks = ranks;
    fpga.threads = ranks;
    fpga.backend = "fpga-sim";
    const runtime::DistributedSolveResult got = runtime::solve_distributed_poisson(fpga);

    ASSERT_EQ(ref.cg.iterations, got.cg.iterations) << "ranks=" << ranks;
    ASSERT_EQ(ref.cg.residual_history.size(), got.cg.residual_history.size());
    for (std::size_t i = 0; i < ref.cg.residual_history.size(); ++i) {
      ASSERT_EQ(ref.cg.residual_history[i], got.cg.residual_history[i])
          << "ranks=" << ranks << " iteration " << i;
    }
    ASSERT_EQ(ref.x.size(), got.x.size());
    for (std::size_t i = 0; i < ref.x.size(); ++i) {
      ASSERT_EQ(ref.x[i], got.x[i]) << "ranks=" << ranks << " dof " << i;
    }
    // The rank charged a modeled device for its slab.
    EXPECT_GT(got.modeled_seconds, 0.0) << "ranks=" << ranks;
    // Global FLOP accounting is rank-count invariant.
    EXPECT_EQ(ref.cg.flops, got.cg.flops);
  }
}

TEST(DistributedBackend, RejectsUnknownBackendNames) {
  runtime::DistributedSolveConfig config = base_config();
  config.ranks = 2;
  config.backend = "warp-drive";
  EXPECT_THROW((void)runtime::solve_distributed_poisson(config),
               std::invalid_argument);
}

TEST(DistributedBackend, NekboneProxyRoutesBackendThroughRanks) {
  solver::NekboneConfig config;
  config.degree = 3;
  config.nelx = config.nely = 2;
  config.nelz = 4;
  config.cg_iterations = 10;

  config.ranks = 1;
  config.backend = "cpu";
  const solver::NekboneResult single = solver::run_nekbone(config);
  EXPECT_EQ(single.modeled_seconds, 0.0);

  config.ranks = 2;
  config.backend = "fpga-sim";
  const solver::NekboneResult dist = solver::run_nekbone(config);
  EXPECT_EQ(single.final_residual, dist.final_residual)
      << "fpga-sim over ranks must not perturb the iterates";
  EXPECT_GT(dist.modeled_seconds, 0.0);
  EXPECT_GT(dist.modeled_gflops, 0.0);

  config.backend = "hal9000";
  EXPECT_THROW((void)solver::run_nekbone(config), std::invalid_argument);
}

}  // namespace
}  // namespace semfpga
