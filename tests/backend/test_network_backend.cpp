/// NetworkChargingBackend contracts: the decorator charges exactly the
/// NetworkSpec terms (halo latency + bytes, log-tree allreduce), the
/// overlap budget hides only the interior fraction of the modeled apply —
/// and only on apply paths, never on the standalone qqt — and no bit of
/// any numeric result changes.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "backend/backend.hpp"
#include "backend/network_backend.hpp"
#include "solver/poisson_system.hpp"

namespace semfpga::backend {
namespace {

sem::Mesh make_mesh() {
  sem::BoxMeshSpec spec;
  spec.degree = 3;
  spec.nelx = spec.nely = spec.nelz = 2;
  return sem::box_mesh(spec);
}

aligned_vector<double> make_field(const solver::PoissonSystem& system) {
  const std::size_t n = system.n_local();
  aligned_vector<double> u(n);
  system.sample(
      [](double x, double y, double z) { return x * x + 0.5 * y - 0.25 * z; },
      std::span<double>(u.data(), n));
  return u;
}

/// The rank this test models: 4 ranks, 2 neighbours, 1000 doubles per
/// exchange, half the elements interior, over a 10 us / 1 GB/s link.
NetworkChargeSpec test_spec(bool overlap) {
  NetworkChargeSpec spec;
  spec.network = arch::NetworkSpec{10.0, 1.0};
  spec.n_ranks = 4;
  spec.n_neighbors = 2;
  spec.halo_doubles = 1000;
  spec.interior_fraction = 0.5;
  spec.overlap = overlap;
  return spec;
}

// 2 neighbour latencies + 8000 bytes over 1 GB/s.
constexpr double kHaloFull = 2.0 * 10.0e-6 + 1000.0 * 8.0 / 1e9;
// 2 * ceil(log2 4) hop latencies per reduction.
constexpr double kAllreduce = 2.0 * 2.0 * 10.0e-6;

TEST(NetworkChargingBackend, ChargesHaloAndAllreduceTerms) {
  const sem::Mesh mesh = make_mesh();
  solver::PoissonSystem system(mesh);
  NetworkChargingBackend be(make("cpu", system), test_spec(/*overlap=*/false));
  EXPECT_STREQ(be.name(), "network[cpu]");

  const aligned_vector<double> u = make_field(system);
  aligned_vector<double> w(system.n_local());

  // The cpu backend keeps no ledger, so charges land in the decorator's.
  FpgaTimeline* t = be.mutable_timeline();
  ASSERT_NE(t, nullptr);

  be.apply(std::span<const double>(u.data(), u.size()),
           std::span<double>(w.data(), w.size()));
  EXPECT_EQ(t->network_halo_exchanges, 1);
  EXPECT_DOUBLE_EQ(t->network_halo_seconds, kHaloFull);
  EXPECT_DOUBLE_EQ(t->network_overlap_saved_seconds, 0.0);

  aligned_vector<double> raw = u;
  be.qqt(std::span<double>(raw.data(), raw.size()));
  EXPECT_EQ(t->network_halo_exchanges, 2);
  EXPECT_DOUBLE_EQ(t->network_halo_seconds, 2.0 * kHaloFull);

  (void)be.dot(std::span<const double>(u.data(), u.size()),
               std::span<const double>(u.data(), u.size()));
  EXPECT_DOUBLE_EQ(t->network_allreduce_seconds, kAllreduce);
}

TEST(NetworkChargingBackend, OverlapHidesTheInteriorFractionOnApplyOnly) {
  const sem::Mesh mesh = make_mesh();
  solver::PoissonSystem system(mesh);
  NetworkChargingBackend be(make("cpu", system), test_spec(/*overlap=*/true));

  const aligned_vector<double> u = make_field(system);
  aligned_vector<double> w(system.n_local());
  FpgaTimeline* t = be.mutable_timeline();
  ASSERT_NE(t, nullptr);

  // No modeled apply time yet: nothing to hide behind, full charge.
  be.apply(std::span<const double>(u.data(), u.size()),
           std::span<double>(w.data(), w.size()));
  EXPECT_DOUBLE_EQ(t->network_halo_seconds, kHaloFull);
  EXPECT_DOUBLE_EQ(t->network_overlap_saved_seconds, 0.0);

  // With a modeled apply of 4e-5 s and half the elements interior, 2e-5 s
  // of the halo hides; only the remainder is serialised.
  t->per_apply_seconds = 4.0e-5;
  const double budget = 0.5 * 4.0e-5;
  be.apply(std::span<const double>(u.data(), u.size()),
           std::span<double>(w.data(), w.size()));
  EXPECT_DOUBLE_EQ(t->network_halo_seconds, kHaloFull + (kHaloFull - budget));
  EXPECT_DOUBLE_EQ(t->network_overlap_saved_seconds, budget);

  // The standalone gather-scatter has no interior compute: full charge
  // even with overlap on.
  aligned_vector<double> raw = u;
  be.qqt(std::span<double>(raw.data(), raw.size()));
  EXPECT_DOUBLE_EQ(t->network_halo_seconds,
                   kHaloFull + (kHaloFull - budget) + kHaloFull);
  EXPECT_DOUBLE_EQ(t->network_overlap_saved_seconds, budget);
}

TEST(NetworkChargingBackend, NumericsPassThroughBitwise) {
  const sem::Mesh mesh = make_mesh();
  solver::PoissonSystem system(mesh);
  std::unique_ptr<Backend> bare = make("cpu", system);
  NetworkChargingBackend wrapped(make("cpu", system), test_spec(/*overlap=*/true));

  const aligned_vector<double> u = make_field(system);
  const std::size_t n = u.size();
  aligned_vector<double> w_bare(n), w_wrapped(n);
  bare->apply(std::span<const double>(u.data(), n),
              std::span<double>(w_bare.data(), n));
  wrapped.apply(std::span<const double>(u.data(), n),
                std::span<double>(w_wrapped.data(), n));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(w_wrapped[i], w_bare[i]) << "dof " << i;
  }
  EXPECT_EQ(wrapped.dot(std::span<const double>(u.data(), n),
                        std::span<const double>(w_wrapped.data(), n)),
            bare->dot(std::span<const double>(u.data(), n),
                      std::span<const double>(w_bare.data(), n)));
}

TEST(NetworkChargingBackend, SingleRankChargesNothing) {
  const sem::Mesh mesh = make_mesh();
  solver::PoissonSystem system(mesh);
  NetworkChargeSpec spec;
  spec.network = arch::NetworkSpec{10.0, 1.0};
  spec.n_ranks = 1;  // no neighbours, no tree
  NetworkChargingBackend be(make("cpu", system), spec);

  const aligned_vector<double> u = make_field(system);
  aligned_vector<double> w(system.n_local());
  be.apply(std::span<const double>(u.data(), u.size()),
           std::span<double>(w.data(), w.size()));
  (void)be.dot(std::span<const double>(u.data(), u.size()),
               std::span<const double>(u.data(), u.size()));
  const FpgaTimeline* t = be.timeline();
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->network_halo_exchanges, 0);
  EXPECT_DOUBLE_EQ(t->network_halo_seconds, 0.0);
  EXPECT_DOUBLE_EQ(t->network_allreduce_seconds, 0.0);
}

}  // namespace
}  // namespace semfpga::backend
