/// Chebyshev smoother through the Backend seam: the preconditioner now
/// routes every operator apply and vector pass through the same Backend as
/// CG, so it inherits the fused qqt-in-operator sweep and the engine's
/// thread plumbing.  Contract: bitwise parity fused-vs-split and under
/// re-threading, for the standalone apply and for a full
/// Chebyshev-preconditioned CG solve — and the Backend-based construction
/// is bitwise identical to the PoissonSystem convenience constructor.

#include <cmath>

#include <gtest/gtest.h>

#include "backend/cpu_backend.hpp"
#include "backend/fpga_sim_backend.hpp"
#include "common/rng.hpp"
#include "solver/cg.hpp"
#include "solver/chebyshev.hpp"

namespace semfpga {
namespace {

constexpr double kPi = 3.14159265358979323846;

sem::Mesh make_mesh(int degree, int nel) {
  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = nel;
  return sem::box_mesh(spec);
}

aligned_vector<double> random_masked_field(const solver::PoissonSystem& system,
                                           std::uint64_t seed) {
  const std::size_t n = system.n_local();
  aligned_vector<double> v(n);
  SplitMix64 rng(seed);
  std::vector<double> global(system.gs().n_global());
  for (double& g : global) {
    g = rng.uniform(-1.0, 1.0);
  }
  system.gs().gather(global, std::span<double>(v.data(), n));
  for (std::size_t p = 0; p < n; ++p) {
    v[p] *= system.mask()[p];
  }
  return v;
}

/// One smoother application under (fused, threads); z out.
aligned_vector<double> smoother_output(const sem::Mesh& mesh, bool fused, int threads,
                                       double lambda_max) {
  solver::PoissonSystem system(mesh);
  system.set_fused(fused);
  system.set_threads(threads);
  backend::CpuBackend be(system);
  const solver::ChebyshevPreconditioner precond(be, 4, lambda_max);
  const auto r = random_masked_field(system, 42);
  const std::size_t n = system.n_local();
  aligned_vector<double> z(n);
  precond.apply(std::span<const double>(r.data(), n), std::span<double>(z.data(), n));
  return z;
}

TEST(ChebyshevBackend, ApplyIsBitwiseInvariantUnderFusionAndThreads) {
  const sem::Mesh mesh = make_mesh(3, 3);
  // Fixed spectral bound so every configuration runs the identical
  // polynomial (the estimate itself is covered below).
  const double lambda_max = 2.5;
  const auto base = smoother_output(mesh, /*fused=*/true, /*threads=*/1, lambda_max);
  for (const bool fused : {false, true}) {
    for (const int threads : {1, 2, 4}) {
      const auto z = smoother_output(mesh, fused, threads, lambda_max);
      ASSERT_EQ(base.size(), z.size());
      for (std::size_t i = 0; i < z.size(); ++i) {
        ASSERT_EQ(base[i], z[i]) << "fused=" << fused << " threads=" << threads
                                 << " dof " << i;
      }
    }
  }
}

TEST(ChebyshevBackend, LambdaEstimateIsBitwiseInvariantUnderFusionAndThreads) {
  const sem::Mesh mesh = make_mesh(3, 3);
  double base = 0.0;
  for (const bool fused : {true, false}) {
    for (const int threads : {1, 3}) {
      solver::PoissonSystem system(mesh);
      system.set_fused(fused);
      system.set_threads(threads);
      backend::CpuBackend be(system);
      const double lambda = solver::estimate_lambda_max(be, 20, 7);
      if (base == 0.0) {
        base = lambda;
        EXPECT_GT(base, 0.0);
        continue;
      }
      ASSERT_EQ(base, lambda) << "fused=" << fused << " threads=" << threads;
    }
  }
}

TEST(ChebyshevBackend, PreconditionedCgIsBitwiseInvariant) {
  const sem::Mesh mesh = make_mesh(3, 3);

  auto solve = [&](bool fused, int threads, bool via_system_ctor) {
    solver::PoissonSystem system(mesh);
    system.set_fused(fused);
    system.set_threads(threads);
    backend::CpuBackend be(system);
    // Fixed bound: the estimate's invariance is covered separately.
    std::unique_ptr<solver::ChebyshevPreconditioner> precond;
    if (via_system_ctor) {
      precond = std::make_unique<solver::ChebyshevPreconditioner>(system, 3, 2.5);
    } else {
      precond = std::make_unique<solver::ChebyshevPreconditioner>(be, 3, 2.5);
    }

    const std::size_t n = system.n_local();
    aligned_vector<double> f(n), b(n), x(n, 0.0);
    system.sample(
        [](double px, double py, double pz) {
          return 3.0 * kPi * kPi * std::sin(kPi * px) * std::sin(kPi * py) *
                 std::sin(kPi * pz);
        },
        std::span<double>(f.data(), n));
    system.assemble_rhs(std::span<const double>(f.data(), n),
                        std::span<double>(b.data(), n));

    solver::CgOptions options;
    options.max_iterations = 15;
    options.tolerance = 0.0;
    options.record_history = true;
    options.preconditioner = [&](std::span<const double> r, std::span<double> z) {
      precond->apply(r, z);
    };
    const solver::CgResult result =
        solver::solve_cg(be, std::span<const double>(b.data(), n),
                         std::span<double>(x.data(), n), options);
    return std::make_pair(result, x);
  };

  const auto [base_result, base_x] = solve(true, 1, false);
  for (const bool fused : {false, true}) {
    for (const int threads : {1, 2}) {
      for (const bool via_system : {false, true}) {
        const auto [result, x] = solve(fused, threads, via_system);
        const std::string where = "fused=" + std::to_string(fused) +
                                  " threads=" + std::to_string(threads) +
                                  " via_system=" + std::to_string(via_system);
        ASSERT_EQ(base_result.residual_history.size(),
                  result.residual_history.size())
            << where;
        for (std::size_t i = 0; i < result.residual_history.size(); ++i) {
          ASSERT_EQ(base_result.residual_history[i], result.residual_history[i])
              << where << " iteration " << i;
        }
        for (std::size_t i = 0; i < x.size(); ++i) {
          ASSERT_EQ(base_x[i], x[i]) << where << " dof " << i;
        }
      }
    }
  }
}

TEST(ChebyshevBackend, ChargesModeledTimeOnTheFpgaSimBackend) {
  const sem::Mesh mesh = make_mesh(3, 2);
  solver::PoissonSystem system(mesh);
  backend::FpgaSimBackend be(system, backend::FpgaSimOptions{});
  const solver::ChebyshevPreconditioner precond(be, 4, 2.5);
  const auto r = random_masked_field(system, 9);
  const std::size_t n = system.n_local();
  aligned_vector<double> z(n);
  precond.apply(std::span<const double>(r.data(), n), std::span<double>(z.data(), n));
  // order-1 applies of the operator inside the smoother, all charged.
  EXPECT_EQ(be.timeline()->operator_applies, 3);
  EXPECT_GT(be.timeline()->vector_seconds, 0.0);
}

}  // namespace
}  // namespace semfpga
