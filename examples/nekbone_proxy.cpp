/// Nekbone-equivalent proxy run: fixed-iteration CG on the SEM Poisson
/// system, reporting Nekbone-style FLOP rates — the workload the paper's
/// CPU baselines execute.  Optionally routes the Ax kernel through the
/// FPGA accelerator simulator to show where the accelerator sits inside
/// the solver.
///
/// Usage: nekbone_proxy [--degree 7] [--nel 8] [--iters 100] [--fpga]
///                      [--threads 1] [--ranks 1] [--partition slab|pencil|3d]
///                      [--overlap 0|1] [--network eth-100g|LAT_US:BW_GBS]
///                      [--variant fixed] [--fused 1]
///                      [--backend cpu] [--fpga-device gx2800]
///                      [--helmholtz] [--lambda 1.0]
///                      [--faults crash@r2:i5] [--checkpoint-every 4]
///                      [--fabric-timeout 30] [--obs summary]
/// --threads 0 uses every hardware thread; --variant picks the Ax schedule
/// (reference | mxm | mxm_blocked | fixed); --fused=0 runs the split
/// Ax -> qqt -> mask passes instead of the fused qqt-in-operator sweep;
/// --ranks > 1 runs the in-process SPMD runtime (z-slab partition, halo
/// exchange, deterministic allreduce); --backend=fpga-sim runs the same
/// solve while charging modeled FPGA time (kernel cycles, memory bandwidth,
/// PCIe) so the proxy prints measured CPU and modeled FPGA timelines from
/// one code path.  --helmholtz switches the operator to the BK5 Helmholtz
/// system H = A + lambda B; --faults injects scripted faults
/// (runtime/fault.hpp grammar) and --checkpoint-every enables the
/// supervised solve with rollback/shrink recovery.  All of these knobs
/// produce bitwise identical iterates (faults excepted, by design).

#include <cstdio>

#include "arch/network.hpp"
#include "backend/backend.hpp"
#include "backend/fpga_sim_backend.hpp"
#include "common/cli.hpp"
#include "runtime/partition.hpp"
#include "fpga/accelerator.hpp"
#include "kernels/ax_dispatch.hpp"
#include "obs/obs.hpp"
#include "runtime/fault.hpp"
#include "solver/nekbone.hpp"

int main(int argc, char** argv) {
  using namespace semfpga;
  const Cli cli(argc, argv, std::vector<FlagSpec>{
      {"degree", FlagSpec::Kind::kInt, "7", "polynomial degree N"},
      {"nel", FlagSpec::Kind::kInt, "8", "elements per direction"},
      {"iters", FlagSpec::Kind::kInt, "100", "fixed CG iteration count"},
      {"threads", FlagSpec::Kind::kInt, "1", "total thread budget (0 = all)"},
      {"ranks", FlagSpec::Kind::kInt, "1", "SPMD ranks"},
      {"partition", FlagSpec::Kind::kString, "slab",
       "rank partition of the box: slab|pencil|3d (bitwise identical)"},
      {"overlap", FlagSpec::Kind::kInt, "0",
       "overlap halo messages with interior compute (0|1; bitwise identical)"},
      {"network", FlagSpec::Kind::kString, "",
       "modeled interconnect: preset (" + arch::known_networks_joined() +
           ") or LAT_US:BW_GBS; charges network time into the modeled timeline"},
      {"variant", FlagSpec::Kind::kString, "fixed",
       "Ax schedule: reference|mxm|mxm_blocked|fixed"},
      {"fused", FlagSpec::Kind::kInt, "1", "fused qqt-in-operator sweep (0 = split)"},
      {"backend", FlagSpec::Kind::kString, "cpu",
       "execution backend: " + backend::known_backends_joined()},
      {"fpga-device", FlagSpec::Kind::kString, "gx2800",
       "modeled device of --backend=fpga-sim (gx2800|agilex-027|stratix10-10m|"
       "stratix10-10m-enhanced|ideal-cfd)"},
      {"fpga", FlagSpec::Kind::kBool, "", "estimate the FPGA-accelerated Ax"},
      {"helmholtz", FlagSpec::Kind::kBool, "",
       "solve the BK5 Helmholtz system H = A + lambda B instead of Poisson"},
      {"lambda", FlagSpec::Kind::kDouble, "1.0",
       "Helmholtz mass coefficient (requires --helmholtz)"},
      {"faults", FlagSpec::Kind::kString, "",
       "scripted fault plan, e.g. crash@r2:i5,nan@r1:i3 "
       "(kinds: crash|delay|drop|nan|bitflip|stall)"},
      {"checkpoint-every", FlagSpec::Kind::kInt, "0",
       "checkpoint period in CG iterations (0 = off; > 0 or --faults runs the "
       "supervised solve)"},
      {"fault-retries", FlagSpec::Kind::kInt, "3",
       "recovery attempts before the supervised solve gives up"},
      {"fabric-timeout", FlagSpec::Kind::kDouble, "30",
       "deadline in seconds of blocking fabric calls (<= 0 waits forever)"},
      {"obs", FlagSpec::Kind::kString, "off", obs::kCliHelp},
  });
  if (const auto ec = cli.early_exit("nekbone_proxy",
                                     "Nekbone-equivalent proxy: fixed-iteration CG on "
                                     "the SEM Poisson system.")) {
    return *ec;
  }

  solver::NekboneConfig config;
  config.degree = static_cast<int>(cli.get_int("degree", 7));
  config.nelx = config.nely = config.nelz = static_cast<int>(cli.get_int("nel", 8));
  config.cg_iterations = static_cast<int>(cli.get_int("iters", 100));
  config.threads = static_cast<int>(cli.get_int("threads", 1));
  config.ranks = static_cast<int>(cli.get_int("ranks", 1));
  config.partition = cli.get("partition", "slab");
  config.overlap = cli.get_int("overlap", 0) != 0;
  config.network = cli.get("network", "");
  config.ax_variant = kernels::parse_ax_variant(cli.get("variant", "fixed"));
  config.fused = cli.get_int("fused", 1) != 0;
  config.backend = cli.get("backend", "cpu");
  config.backend_options.fpga_device = cli.get("fpga-device", "gx2800");
  if (cli.has("helmholtz")) {
    config.operator_kind = solver::OperatorKind::kHelmholtz;
    config.helmholtz_lambda = cli.get_double("lambda", 1.0);
  } else if (cli.has("lambda")) {
    std::fprintf(stderr, "nekbone_proxy: --lambda requires --helmholtz\n");
    return 2;
  }
  config.obs = cli.get("obs", "off");
  config.faults = cli.get("faults", "");
  config.checkpoint_every = static_cast<int>(cli.get_int("checkpoint-every", 0));
  config.fault_retries = static_cast<int>(cli.get_int("fault-retries", 3));
  config.fabric_timeout_seconds = cli.get_double("fabric-timeout", 30.0);
  if (config.checkpoint_every < 0) {
    std::fprintf(stderr, "nekbone_proxy: --checkpoint-every must be >= 0\n");
    return 2;
  }
  // Unknown backend/device names must error out like any other bad flag
  // value, before any work runs (even when --backend=cpu would ignore the
  // device — a silently-accepted typo reads as a preset taking effect).
  backend::require_known(config.backend);
  (void)backend::fpga_device_by_name(config.backend_options.fpga_device);
  // Same rule for the fault plan: a typo'd script must fail here, not fire
  // half a plan mid-solve.
  (void)runtime::parse_fault_plan(config.faults);
  // And the partition/network flags (the drivers re-parse; validating here
  // keeps the failure before any work and the message CLI-shaped).
  (void)runtime::parse_partition_kind(config.partition);
  if (!config.network.empty()) {
    (void)arch::parse_network_flag(config.network);
  }
  // And the obs setting (run_nekbone re-applies it; validating here keeps
  // the failure before any work and the message CLI-shaped).
  if (!obs::configure_from_flag(config.obs, "nekbone_proxy")) {
    return 2;
  }

  const solver::NekboneResult result = solver::run_nekbone(config);
  std::printf("%s\n", solver::format_result(config, result).c_str());

  if (cli.has("fpga")) {
    // What would the accelerator contribute?  The CG loop calls Ax once per
    // iteration (plus the initial residual); everything else stays on the
    // host exactly as in the paper's deployment.
    const fpga::SemAccelerator acc(fpga::stratix10_gx2800(),
                                   fpga::KernelConfig::banked(config.degree));
    const fpga::RunStats per_apply = acc.estimate(result.n_elements);
    const double ax_seconds =
        per_apply.seconds * static_cast<double>(result.iterations + 1);
    std::printf("FPGA-simulated Ax: %.1f GFLOP/s per apply; %d applies would take "
                "%.3f s (%.1f W board power)\n",
                per_apply.gflops, result.iterations + 1, ax_seconds,
                per_apply.power_w);
  }
  return obs::finalize();
}
