/// Solves the 3-D Poisson problem of paper Section II end-to-end:
///     -lap(u) = f  on (0,1)^3,  u = 0 on the boundary,
/// with the manufactured solution u = sin(pi x) sin(pi y) sin(pi z), and
/// prints a p-refinement convergence table demonstrating spectral accuracy
/// — the property that makes high polynomial degrees (and hence the
/// paper's accelerator) worthwhile.
///
/// The solve runs through the selected execution backend;
/// --backend=fpga-sim computes bitwise-identical numerics while charging
/// modeled FPGA time, adding a modeled-seconds column to the table.
///
/// Usage: poisson_solve [--nel 2] [--max-degree 10] [--deformed]
///                      [--backend cpu]

#include <cmath>
#include <cstdio>

#include "backend/backend.hpp"
#include "backend/fpga_sim_backend.hpp"
#include "common/cli.hpp"
#include "solver/cg.hpp"
#include "obs/obs.hpp"

int main(int argc, char** argv) {
  using namespace semfpga;
  const Cli cli(argc, argv, std::vector<FlagSpec>{
      {"nel", FlagSpec::Kind::kInt, "2", "elements per direction"},
      {"max-degree", FlagSpec::Kind::kInt, "10", "largest polynomial degree"},
      {"deformed", FlagSpec::Kind::kBool, "", "solve on the sine-warped mesh"},
      {"backend", FlagSpec::Kind::kString, "cpu",
       "execution backend: " + backend::known_backends_joined()},
      {"obs", FlagSpec::Kind::kString, "off", obs::kCliHelp},
  });
  if (const auto ec = cli.early_exit("poisson_solve",
                                     "Spectral convergence of the Poisson solve over "
                                     "polynomial degree.")) {
    return *ec;
  }
  if (!obs::configure_from_flag(cli.get("obs", "off"), "poisson_solve")) {
    return 2;
  }
  const int nel = static_cast<int>(cli.get_int("nel", 2));
  const int max_degree = static_cast<int>(cli.get_int("max-degree", 10));
  const bool deformed = cli.has("deformed");
  const std::string backend_name = cli.get("backend", "cpu");
  backend::require_known(backend_name);
  const bool modeled = backend_name != "cpu";
  constexpr double kPi = 3.14159265358979323846;

  std::printf("p-convergence of the SEM Poisson solve on a %dx%dx%d %s mesh "
              "(backend: %s)\n\n",
              nel, nel, nel, deformed ? "sine-deformed" : "uniform",
              backend_name.c_str());
  std::printf("%4s %10s %8s %12s %14s%s\n", "N", "DOFs", "iters", "residual",
              "max error", modeled ? "   modeled s" : "");

  for (int degree = 2; degree <= max_degree; ++degree) {
    sem::BoxMeshSpec spec;
    spec.degree = degree;
    spec.nelx = spec.nely = spec.nelz = nel;
    if (deformed) {
      spec.deformation = sem::Deformation::kSine;
      spec.deformation_amplitude = 0.03;
    }
    const sem::Mesh mesh = sem::box_mesh(spec);
    solver::PoissonSystem system(mesh);
    const auto be = backend::make(backend_name, system);

    const std::size_t n = system.n_local();
    aligned_vector<double> f(n), b(n), x(n, 0.0);
    system.sample(
        [kPi](double px, double py, double pz) {
          return 3.0 * kPi * kPi * std::sin(kPi * px) * std::sin(kPi * py) *
                 std::sin(kPi * pz);
        },
        std::span<double>(f.data(), n));
    system.assemble_rhs(std::span<const double>(f.data(), n),
                        std::span<double>(b.data(), n));

    solver::CgOptions options;
    options.tolerance = 1e-12;
    options.max_iterations = 2000;
    const solver::CgResult result = solver::solve_cg(
        *be, std::span<const double>(b.data(), n), std::span<double>(x.data(), n),
        options);

    aligned_vector<double> exact(n);
    system.sample(
        [kPi](double px, double py, double pz) {
          return std::sin(kPi * px) * std::sin(kPi * py) * std::sin(kPi * pz);
        },
        std::span<double>(exact.data(), n));
    double err = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      err = std::max(err, std::abs(x[p] - exact[p]));
    }
    std::printf("%4d %10zu %8d %12.3e %14.6e", degree, n, result.iterations,
                result.final_residual, err);
    if (const backend::FpgaTimeline* t = be->timeline()) {
      std::printf(" %11.4f", t->total_seconds());
    }
    std::printf("\n");
  }
  std::printf("\nThe error column falls exponentially in N until it hits the CG\n"
              "tolerance floor — spectral convergence.\n");
  return obs::finalize();
}
