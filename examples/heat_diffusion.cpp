/// Time-dependent heat diffusion — the kind of workload the paper's CFD
/// motivation boils down to once a time integrator wraps the elliptic
/// solve.  Implicit Euler for
///     u_t = kappa lap(u)   on (0,1)^3,  u = 0 on the boundary,
/// gives one Helmholtz solve per step:
///     (M + dt kappa A) u^{n+1} = M u^n
/// which this example evaluates with the BK5-style Helmholtz operator and
/// solves with Chebyshev-preconditioned CG.  The numerical decay rate of
/// the fundamental mode is compared against the analytic exp(-3 pi^2
/// kappa t).
///
/// Usage: heat_diffusion [--degree 6] [--nel 2] [--steps 20] [--dt 2e-3]

#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "kernels/helmholtz.hpp"
#include "solver/cg.hpp"
#include "solver/chebyshev.hpp"
#include "obs/obs.hpp"

int main(int argc, char** argv) {
  using namespace semfpga;
  const Cli cli(argc, argv, std::vector<FlagSpec>{
      {"degree", FlagSpec::Kind::kInt, "6", "polynomial degree N"},
      {"nel", FlagSpec::Kind::kInt, "2", "elements per direction"},
      {"steps", FlagSpec::Kind::kInt, "20", "implicit time steps"},
      {"dt", FlagSpec::Kind::kDouble, "2e-3", "time step"},
      {"kappa", FlagSpec::Kind::kDouble, "1.0", "diffusivity"},
      {"obs", FlagSpec::Kind::kString, "off", obs::kCliHelp},
  });
  if (const auto ec = cli.early_exit("heat_diffusion",
                                     "Implicit heat equation stepped with the SEM "
                                     "Poisson solver.")) {
    return *ec;
  }
  if (!obs::configure_from_flag(cli.get("obs", "off"), "heat_diffusion")) {
    return 2;
  }
  const int degree = static_cast<int>(cli.get_int("degree", 6));
  const int nel = static_cast<int>(cli.get_int("nel", 2));
  const int steps = static_cast<int>(cli.get_int("steps", 20));
  const double dt = cli.get_double("dt", 2e-3);
  const double kappa = cli.get_double("kappa", 1.0);
  constexpr double kPi = 3.14159265358979323846;

  sem::BoxMeshSpec spec;
  spec.degree = degree;
  spec.nelx = spec.nely = spec.nelz = nel;
  const sem::Mesh mesh = sem::box_mesh(spec);
  solver::PoissonSystem system(mesh);
  const std::size_t n = system.n_local();

  // Implicit-Euler operator: w = A u + (1/(dt kappa)) M u, scaled so the
  // stiffness part keeps its conditioning.  The solve below handles
  // (A + sigma M) u^{n+1} = sigma M u^n with sigma = 1/(dt kappa).
  const double sigma = 1.0 / (dt * kappa);
  system.set_local_operator([&system, sigma](std::span<const double> u,
                                             std::span<double> w) {
    kernels::HelmholtzArgs args;
    args.ax.u = u;
    args.ax.w = w;
    args.ax.g = std::span<const double>(system.geom().g.data(), system.geom().g.size());
    args.ax.dx = std::span<const double>(system.ref().deriv().d.data(),
                                         system.ref().deriv().d.size());
    args.ax.dxt = std::span<const double>(system.ref().deriv().dt.data(),
                                          system.ref().deriv().dt.size());
    args.ax.n1d = system.ref().n1d();
    args.ax.n_elements = system.geom().n_elements;
    args.mass = std::span<const double>(system.geom().mass.data(),
                                        system.geom().mass.size());
    args.lambda = sigma;
    kernels::helmholtz_reference(args);
  });

  // Initial condition: the fundamental mode (decays at exactly 3 pi^2).
  aligned_vector<double> u(n);
  system.sample(
      [kPi](double x, double y, double z) {
        return std::sin(kPi * x) * std::sin(kPi * y) * std::sin(kPi * z);
      },
      std::span<double>(u.data(), n));
  for (std::size_t p = 0; p < n; ++p) {
    u[p] *= system.mask()[p];
  }

  const solver::ChebyshevPreconditioner precond(system, 3);
  solver::CgOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 500;
  options.preconditioner = [&precond](std::span<const double> r, std::span<double> z) {
    precond.apply(r, z);
  };

  auto peak = [&u]() {
    double m = 0.0;
    for (double v : u) {
      m = std::max(m, std::abs(v));
    }
    return m;
  };

  std::printf("implicit-Euler heat equation, N=%d, %d^3 elements, dt=%.1e, "
              "kappa=%.1f\n\n",
              degree, nel, dt, kappa);
  std::printf("%6s %14s %14s %10s %8s\n", "step", "peak u", "analytic", "ratio",
              "CG its");

  aligned_vector<double> rhs(n), b(n);
  const double u0 = peak();
  int total_iterations = 0;
  for (int s = 1; s <= steps; ++s) {
    // b = mask(QQ^T(sigma M u^n)).
    for (std::size_t p = 0; p < n; ++p) {
      rhs[p] = sigma * u[p];
    }
    system.assemble_rhs(std::span<const double>(rhs.data(), n),
                        std::span<double>(b.data(), n));
    const solver::CgResult r = solver::solve_cg(
        system, std::span<const double>(b.data(), n), std::span<double>(u.data(), n),
        options);
    total_iterations += r.iterations;

    const double t = s * dt;
    // Implicit Euler's discrete decay per step is 1/(1 + dt kappa 3 pi^2).
    const double discrete =
        u0 * std::pow(1.0 / (1.0 + dt * kappa * 3.0 * kPi * kPi), s);
    const double analytic = u0 * std::exp(-3.0 * kPi * kPi * kappa * t);
    std::printf("%6d %14.6e %14.6e %10.4f %8d\n", s, peak(), analytic,
                peak() / discrete, r.iterations);
  }
  std::printf("\nThe ratio column compares against the implicit-Euler discrete\n"
              "decay (exact for the fundamental mode): it stays at 1.0000 to\n"
              "solver tolerance.  Total CG iterations: %d.\n",
              total_iterations);
  return obs::finalize();
}
