/// Design-space explorer answering the paper's closing question
/// (Section V-D): what would it take for an FPGA to beat the NVIDIA
/// A100 on SEM computations?
///
/// Sweeps external bandwidth and logic/DSP budgets through the Section IV
/// performance model for both soft and hardened FP64 implementations and
/// prints the frontier, ending with the paper's named devices.
///
/// Usage: fpga_design_explorer [--degree 11]

#include <cstdio>

#include "arch/platform_model.hpp"
#include "common/cli.hpp"
#include "fpga/device.hpp"
#include "model/throughput.hpp"
#include "obs/obs.hpp"

using namespace semfpga;

namespace {

double projected_gflops(const model::DeviceEnvelope& env, int degree) {
  const model::KernelCost cost = model::poisson_cost(degree);
  const model::Throughput t =
      model::max_throughput(cost, env, model::UnrollPolicy::kMultiDim);
  return model::peak_flops(cost, t, env.clock_hz) / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv, std::vector<FlagSpec>{
      {"degree", FlagSpec::Kind::kInt, "11", "polynomial degree N"},
      {"obs", FlagSpec::Kind::kString, "off", obs::kCliHelp},
  });
  if (const auto ec = cli.early_exit("fpga_design_explorer",
                                     "Explore accelerator configurations for one "
                                     "degree.")) {
    return *ec;
  }
  if (!obs::configure_from_flag(cli.get("obs", "off"), "fpga_design_explorer")) {
    return 2;
  }
  const int degree = static_cast<int>(cli.get_int("degree", 11));

  const double a100 =
      arch::platform_by_name("NVIDIA A100 PCIe").gflops(degree, 4096);
  std::printf("Target: NVIDIA A100 running the tuned GPU kernel at N=%d: %.0f "
              "GFLOP/s\n\n",
              degree, a100);

  // Sweep: bandwidth x logic scale, soft vs hardened FP64, at 300 MHz.
  std::printf("%-9s %-10s | %10s %10s %10s %10s\n", "FP64", "ALM scale",
              "153.6GB/s", "307.2GB/s", "614.4GB/s", "1228.8GB/s");
  for (const bool hardened : {false, true}) {
    for (const double alm_scale : {1.0, 2.0, 4.0, 6.6}) {
      std::printf("%-9s %-10.1f |", hardened ? "hardened" : "soft", alm_scale);
      for (const double bw : {153.6, 307.2, 614.4, 1228.8}) {
        model::DeviceEnvelope env = fpga::stratix10_gx2800().envelope(300.0);
        env.total.alms *= alm_scale;
        env.total.registers *= alm_scale;
        env.total.dsps = hardened ? 20000.0 : env.total.dsps * alm_scale;
        env.total.brams *= 1.10;
        env.op_cost = hardened ? model::hardened_fp64_cost() : model::soft_fp64_cost();
        env.bandwidth_bytes = bw * 1e9;
        const double g = projected_gflops(env, degree);
        std::printf(" %8.0f%s", g, g > a100 ? "*" : " ");
      }
      std::printf("\n");
    }
  }
  std::printf("(* = beats the A100)\n\n");

  std::printf("The paper's named devices at N=%d (300 MHz):\n", degree);
  for (const fpga::DeviceSpec& dev :
       {fpga::stratix10_gx2800(), fpga::agilex_027(), fpga::stratix10_10m(),
        fpga::stratix10_10m_enhanced(), fpga::ideal_cfd_fpga()}) {
    const model::DeviceEnvelope env = dev.envelope(300.0);
    const model::KernelCost cost = model::poisson_cost(degree);
    const model::Throughput t =
        model::max_throughput(cost, env, model::UnrollPolicy::kMultiDim);
    std::printf("  %-22s T=%3d (%9s-limited) -> %7.0f GFLOP/s%s\n", dev.name.c_str(),
                t.t_design, model::limiter_name(t.limiter),
                model::peak_flops(cost, t, env.clock_hz) / 1e9,
                model::peak_flops(cost, t, env.clock_hz) / 1e9 > a100 ? "  (beats A100)"
                                                                      : "");
  }
  std::printf("\nConclusion (matches the paper): only a device with ~6x the logic —\n"
              "or FP64-hardened DSPs — and ~1.2 TB/s of memory bandwidth overtakes\n"
              "the A100 on this kernel.\n");
  return obs::finalize();
}
