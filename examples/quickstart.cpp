/// Quickstart: the core objects of the library in ~80 lines.
///
/// Builds a deformed spectral-element mesh, applies the matrix-free local
/// Poisson operator on the CPU, verifies it against a dense assembly of
/// one element, then runs the same operands through the FPGA accelerator
/// simulator and prints its performance estimate.

#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "fpga/accelerator.hpp"
#include "kernels/ax.hpp"
#include "sem/dense.hpp"

int main(int argc, char** argv) {
  using namespace semfpga;
  const Cli cli(argc, argv, std::vector<FlagSpec>{});
  if (const auto ec = cli.early_exit("quickstart",
                                     "Tour of the core library objects (no knobs).")) {
    return *ec;
  }

  // 1. A 4x4x4-element degree-7 mesh of the unit cube with a gentle warp.
  sem::BoxMeshSpec spec;
  spec.degree = 7;
  spec.nelx = spec.nely = spec.nelz = 4;
  spec.deformation = sem::Deformation::kSine;
  spec.deformation_amplitude = 0.03;
  const sem::ReferenceElement ref(spec.degree);
  const sem::Mesh mesh(spec, ref);
  const sem::GeomFactors geom = sem::geometric_factors(mesh, ref);
  std::printf("mesh: %zu elements, %d^3 GLL points each, %zu local DOFs\n",
              mesh.n_elements(), ref.n1d(), mesh.n_local());

  // 2. Apply w = D^T G D u with the matrix-free CPU kernel.
  const std::size_t n = mesh.n_local();
  aligned_vector<double> u(n), w(n, 0.0);
  SplitMix64 rng(1);
  for (double& v : u) {
    v = rng.uniform(-1.0, 1.0);
  }
  kernels::AxArgs args;
  args.u = u;
  args.w = w;
  args.g = std::span<const double>(geom.g.data(), geom.g.size());
  args.dx = std::span<const double>(ref.deriv().d.data(), ref.deriv().d.size());
  args.dxt = std::span<const double>(ref.deriv().dt.data(), ref.deriv().dt.size());
  args.n1d = ref.n1d();
  args.n_elements = mesh.n_elements();
  kernels::ax_fixed(args);
  std::printf("CPU kernel done: %lld FLOPs per element apply\n",
              static_cast<long long>(kernels::ax_flops(ref.n1d(), mesh.n_elements())));

  // 3. Verify element 0 against an independently assembled dense matrix.
  const std::size_t ppe = ref.points_per_element();
  const auto dense = sem::assemble_local_matrix(ref, geom, 0);
  const auto expected =
      sem::dense_apply(dense, std::vector<double>(u.begin(), u.begin() + ppe));
  double max_err = 0.0;
  for (std::size_t p = 0; p < ppe; ++p) {
    max_err = std::max(max_err, std::abs(w[p] - expected[p]));
  }
  std::printf("matrix-free vs dense assembly, element 0: max |diff| = %.3e\n", max_err);

  // 4. Run the same operands on the simulated Stratix 10 accelerator.
  const fpga::SemAccelerator acc(fpga::stratix10_gx2800(),
                                 fpga::KernelConfig::banked(spec.degree));
  aligned_vector<double> w_fpga(n, 0.0);
  args.w = w_fpga;
  const fpga::RunStats stats = acc.run(args);
  double max_dev = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    max_dev = std::max(max_dev, std::abs(w[p] - w_fpga[p]));
  }
  std::printf("FPGA-simulated kernel: max |diff vs CPU| = %.3e\n", max_dev);
  std::printf("  estimated: %.1f GFLOP/s at %.0f MHz, %.2f DOFs/cycle, %.1f W, "
              "%.2f GFLOP/s/W (%s-bound)\n",
              stats.gflops, stats.clock_mhz, stats.dofs_per_cycle, stats.power_w,
              stats.gflops_per_w,
              stats.bound == fpga::RunBound::kMemory ? "memory" : "compute");
  return 0;
}
