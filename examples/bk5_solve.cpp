/// Solves the 3-D Helmholtz problem behind CEED's bake-off kernel BK5
/// end-to-end:
///     -lap(u) + lambda u = f  on (0,1)^3,  u = 0 on the boundary,
/// with the manufactured solution u = sin(pi x) sin(pi y) sin(pi z)
/// (f = (3 pi^2 + lambda) u), and prints a p-refinement convergence table —
/// the Helmholtz twin of examples/poisson_solve, running through the same
/// Backend seam (--backend=fpga-sim adds the modeled-seconds column).
///
/// The run ends with the lambda -> 0 parity check: a HelmholtzSystem built
/// with lambda = 0 must reproduce the PoissonSystem CG solve *bitwise* —
/// identical residual history, iterate for iterate, identical solution —
/// because the mass epilogue and the diagonal addend are skipped outright
/// at zero.  The process exits non-zero if a single bit differs, which is
/// what lets ctest run this binary as an end-to-end guard.
///
/// Usage: bk5_solve [--nel 2] [--max-degree 10] [--lambda 2.5]
///                  [--backend cpu]

#include <cmath>
#include <cstdio>

#include "backend/backend.hpp"
#include "backend/fpga_sim_backend.hpp"
#include "common/cli.hpp"
#include "solver/cg.hpp"
#include "solver/helmholtz_system.hpp"
#include "obs/obs.hpp"

namespace {

constexpr double kPi = 3.14159265358979323846;

using namespace semfpga;

/// CG on `system` with the manufactured Helmholtz RHS for `lambda`.
/// `modeled_seconds` (optional) receives the backend's timeline total.
solver::CgResult solve(const solver::PoissonSystem& system, double lambda,
                       const std::string& backend_name, aligned_vector<double>& x,
                       double* modeled_seconds = nullptr) {
  const std::size_t n = system.n_local();
  aligned_vector<double> f(n), b(n);
  system.sample(
      [lambda](double px, double py, double pz) {
        return (3.0 * kPi * kPi + lambda) * std::sin(kPi * px) *
               std::sin(kPi * py) * std::sin(kPi * pz);
      },
      std::span<double>(f.data(), n));
  system.assemble_rhs(std::span<const double>(f.data(), n),
                      std::span<double>(b.data(), n));

  solver::CgOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 2000;
  options.use_jacobi = true;
  options.record_history = true;

  const auto be = backend::make(backend_name, system);
  x.assign(n, 0.0);
  const solver::CgResult result =
      solver::solve_cg(*be, std::span<const double>(b.data(), n),
                       std::span<double>(x.data(), n), options);
  if (modeled_seconds != nullptr) {
    const backend::FpgaTimeline* t = be->timeline();
    *modeled_seconds = t != nullptr ? t->total_seconds() : 0.0;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv, std::vector<FlagSpec>{
      {"nel", FlagSpec::Kind::kInt, "2", "elements per direction"},
      {"max-degree", FlagSpec::Kind::kInt, "10", "largest polynomial degree"},
      {"lambda", FlagSpec::Kind::kDouble, "2.5", "Helmholtz mass coefficient"},
      {"backend", FlagSpec::Kind::kString, "cpu",
       "execution backend: " + backend::known_backends_joined()},
      {"obs", FlagSpec::Kind::kString, "off", obs::kCliHelp},
  });
  if (const auto ec = cli.early_exit("bk5_solve",
                                     "Spectral convergence of the BK5 Helmholtz "
                                     "solve, plus the lambda->0 bitwise parity "
                                     "check against the Poisson solve.")) {
    return *ec;
  }
  if (!obs::configure_from_flag(cli.get("obs", "off"), "bk5_solve")) {
    return 2;
  }
  const int nel = static_cast<int>(cli.get_int("nel", 2));
  const int max_degree = static_cast<int>(cli.get_int("max-degree", 10));
  const double lambda = cli.get_double("lambda", 2.5);
  const std::string backend_name = cli.get("backend", "cpu");
  backend::require_known(backend_name);
  const bool modeled = backend_name != "cpu";

  std::printf("p-convergence of the BK5 Helmholtz solve (-lap u + %g u = f) on a "
              "%dx%dx%d mesh (backend: %s)\n\n",
              lambda, nel, nel, nel, backend_name.c_str());
  std::printf("%4s %10s %8s %12s %14s%s\n", "N", "DOFs", "iters", "residual",
              "max error", modeled ? "   modeled s" : "");

  for (int degree = 2; degree <= max_degree; ++degree) {
    sem::BoxMeshSpec spec;
    spec.degree = degree;
    spec.nelx = spec.nely = spec.nelz = nel;
    const sem::Mesh mesh = sem::box_mesh(spec);
    solver::HelmholtzSystem system(mesh, lambda);

    aligned_vector<double> x;
    double modeled_seconds = 0.0;
    const solver::CgResult result =
        solve(system, lambda, backend_name, x, &modeled_seconds);

    const std::size_t n = system.n_local();
    aligned_vector<double> exact(n);
    system.sample(
        [](double px, double py, double pz) {
          return std::sin(kPi * px) * std::sin(kPi * py) * std::sin(kPi * pz);
        },
        std::span<double>(exact.data(), n));
    double err = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      err = std::max(err, std::abs(x[p] - exact[p]));
    }
    std::printf("%4d %10zu %8d %12.3e %14.6e", degree, n, result.iterations,
                result.final_residual, err);
    if (modeled) {
      std::printf(" %11.4f", modeled_seconds);
    }
    std::printf("\n");
  }

  // --- lambda -> 0 parity: Helmholtz(0) must be bitwise the Poisson solve.
  sem::BoxMeshSpec spec;
  spec.degree = std::min(max_degree, 5);
  spec.nelx = spec.nely = spec.nelz = nel;
  const sem::Mesh mesh = sem::box_mesh(spec);
  solver::HelmholtzSystem helmholtz0(mesh, 0.0);
  solver::PoissonSystem poisson(mesh);

  aligned_vector<double> x_h, x_p;
  const solver::CgResult r_h = solve(helmholtz0, 0.0, backend_name, x_h);
  const solver::CgResult r_p = solve(poisson, 0.0, backend_name, x_p);

  bool parity = r_h.iterations == r_p.iterations &&
                r_h.residual_history.size() == r_p.residual_history.size();
  if (parity) {
    for (std::size_t i = 0; i < r_h.residual_history.size(); ++i) {
      parity = parity && r_h.residual_history[i] == r_p.residual_history[i];
    }
    for (std::size_t p = 0; p < x_h.size(); ++p) {
      parity = parity && x_h[p] == x_p[p];
    }
  }
  if (!parity) {
    std::printf("\nlambda->0 parity FAILED: Helmholtz(0) res=%.17g vs Poisson "
                "res=%.17g (iters %d vs %d)\n",
                r_h.final_residual, r_p.final_residual, r_h.iterations,
                r_p.iterations);
    return 1;
  }
  std::printf("\nlambda->0 parity: OK — Helmholtz(lambda=0) reproduced the Poisson "
              "solve bitwise (res=%.17g, %d iters, every iterate and DOF equal)\n",
              r_p.final_residual, r_p.iterations);
  return obs::finalize();
}
